//! Reusable neural-network building blocks: linear layers, MLPs, and
//! embedding tables. Each layer registers its parameters in a shared
//! [`ParamStore`] at construction and replays them onto a [`Tape`] per
//! forward pass.

use crate::init::{normal_matrix, xavier_uniform};
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore, Precision};
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;

/// Activation functions selectable on MLP hidden layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// Leaky ReLU with negative slope 0.2 (the paper's Eq. 5 choice).
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through (no activation).
    Identity,
}

impl Activation {
    /// Apply this activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu => tape.leaky_relu(x, 0.2),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Identity => x,
        }
    }
}

/// Dense affine layer `y = x W + b`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix handle (`in_dim x out_dim`).
    pub w: ParamId,
    /// Bias row handle (`1 x out_dim`), absent for
    /// [`Linear::new_no_bias`].
    pub b: Option<ParamId>,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.create(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = Some(store.create(format!("{name}.b"), Matrix::zeros(1, out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Create without a bias term.
    pub fn new_no_bias<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.create(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Forward: `x (Rxin) -> (Rxout)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = tape.param(store, b);
                tape.add_row(y, bv)
            }
            None => y,
        }
    }
}

/// Multi-layer perceptron with a shared hidden activation and identity
/// output (callers fuse their own loss/softmax).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// The stacked affine layers, input to output.
    pub layers: Vec<Linear>,
    /// Activation applied between (not after) layers.
    pub hidden_act: Activation,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; requires at least one layer.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        dims: &[usize],
        hidden_act: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out]");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.l{i}"), w[0], w[1]))
            .collect();
        Mlp { layers, hidden_act }
    }

    /// Forward through every layer: `x (Rxin) -> (Rxout)`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i != last {
                h = self.hidden_act.apply(tape, h);
            }
        }
        h
    }

    /// Output dimension of the final layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }
}

/// Embedding table: a learnable `(n, dim)` matrix with row lookup.
///
/// TGAE uses node-identity features ("node identity numbers as default node
/// features"); an embedding lookup is the dense equivalent of one-hot input
/// times a weight matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    /// Table handle (`n x dim`).
    pub table: ParamId,
    /// Number of rows (vocabulary size).
    pub n: usize,
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedding {
    /// Create with `N(0, 1/dim)` rows (keeps lookup norms ~1).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        n: usize,
        dim: usize,
    ) -> Self {
        let std = (1.0 / dim as f64).sqrt() as f32;
        let table = store.create(format!("{name}.table"), normal_matrix(rng, n, dim, std));
        Embedding { table, n, dim }
    }

    /// Look up rows by index.
    ///
    /// f32 tables replay the whole table onto the tape and gather from
    /// it — the bit-identical historical path. bf16 tables use the fused
    /// [`Tape::gather_param_rows`] lookup, which decodes only the
    /// indexed rows (f32 arithmetic downstream) and never materialises
    /// the table at full precision.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, idx: Rc<Vec<u32>>) -> Var {
        match store.precision(self.table) {
            Precision::F32 => {
                let t = tape.param(store, self.table);
                tape.gather_rows(t, idx)
            }
            Precision::Bf16 => tape.gather_param_rows(store, self.table, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, &mut rng, "lin", 4, 7);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(3, 4));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.shape(y), (3, 7));
    }

    #[test]
    fn mlp_learns_xor_ish_regression() {
        // Fit y = x0 * x1 on 4 corner points: needs the hidden layer.
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(42);
        let mlp = Mlp::new(&mut store, &mut rng, "mlp", &[2, 16, 1], Activation::Tanh);
        let xs = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.input(xs.clone());
            let pred = mlp.forward(&mut tape, &store, x);
            let t = tape.input(ys.clone());
            let d = tape.sub(pred, t);
            let sq = tape.mul(d, d);
            let loss = tape.mean(sq);
            last = tape.value(loss).item();
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!(last < 0.01, "XOR regression did not converge: {last}");
    }

    #[test]
    fn embedding_lookup_and_grad_flow() {
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let emb = Embedding::new(&mut store, &mut rng, "emb", 5, 3);
        let mut tape = Tape::new();
        let h = emb.forward(&mut tape, &store, Rc::new(vec![0, 2, 2, 4]));
        assert_eq!(tape.shape(h), (4, 3));
        let loss = tape.sum(h);
        let grads = tape.backward(loss);
        let g = grads.get(emb.table).expect("embedding grad");
        // rows 0 and 4 used once => grad 1; row 2 used twice => grad 2; rows 1,3 unused => 0.
        assert_eq!(g.row(0), &[1., 1., 1.]);
        assert_eq!(g.row(1), &[0., 0., 0.]);
        assert_eq!(g.row(2), &[2., 2., 2.]);
        assert_eq!(g.row(3), &[0., 0., 0.]);
        assert_eq!(g.row(4), &[1., 1., 1.]);
    }

    #[test]
    fn activations_apply() {
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_vec(1, 2, vec![-1.0, 1.0]));
        let y = Activation::Relu.apply(&mut tape, x);
        assert_eq!(tape.value(y).as_slice(), &[0.0, 1.0]);
        let z = Activation::Identity.apply(&mut tape, x);
        assert_eq!(z, x);
    }
}
