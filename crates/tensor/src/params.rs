//! Parameter storage shared by models and optimizers.
//!
//! A [`ParamStore`] owns every trainable matrix of a model. Layers hold
//! [`ParamId`] handles; each forward pass copies the current values onto the
//! [`crate::tape::Tape`] as leaves, and the optimizer applies gradients back
//! into the store. The store serialises with `serde`, which is how trained
//! models are checkpointed.
//!
//! Each parameter carries its own storage [`Precision`]. The default is
//! [`Precision::F32`] — a plain [`Matrix`], bit-identical to every earlier
//! revision of this crate. Large lookup tables (node/time embeddings) can be
//! converted to [`Precision::Bf16`] with [`ParamStore::set_precision`]: the
//! payload shrinks to 2 bytes/scalar and gather bandwidth halves, while all
//! arithmetic stays f32 — rows are decoded on gather
//! ([`ParamStore::gather_rows_f32`]), gradients are f32, and the optimizer
//! updates a decoded f32 copy before rounding back
//! ([`ParamStore::encode_from_f32`]). The rounding is nearest-even with
//! relative error ≤ 2⁻⁸ per scalar (see [`crate::bf16`]).

use crate::bf16::{bf16_decode, bf16_decode_slice, bf16_encode_slice};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Stable handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

impl ParamId {
    pub(crate) fn index(self) -> usize {
        self.0
    }

    pub(crate) fn from_index(i: usize) -> Self {
        ParamId(i)
    }
}

/// Numeric storage format of a parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 4 bytes/scalar, exact; the default everywhere.
    F32,
    /// 2 bytes/scalar, relative rounding error ≤ 2⁻⁸; opt-in for
    /// embedding tables. Arithmetic still happens in f32.
    Bf16,
}

impl Precision {
    /// Payload bytes per scalar in this format.
    pub fn bytes_per_scalar(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 => 2,
        }
    }

    /// Stable lowercase name (persisted in configs / logs).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }
}

#[derive(Clone, Serialize, Deserialize)]
enum Storage {
    F32(Matrix),
    Bf16 {
        rows: usize,
        cols: usize,
        bits: Vec<u16>,
    },
}

impl Storage {
    fn shape(&self) -> (usize, usize) {
        match self {
            Storage::F32(m) => m.shape(),
            Storage::Bf16 { rows, cols, .. } => (*rows, *cols),
        }
    }

    fn len(&self) -> usize {
        match self {
            Storage::F32(m) => m.len(),
            Storage::Bf16 { bits, .. } => bits.len(),
        }
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct Entry {
    name: String,
    value: Storage,
}

/// Owns the trainable parameters of a model.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<Entry>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with a diagnostic name; returns its handle.
    /// New parameters always start at [`Precision::F32`]; convert with
    /// [`ParamStore::set_precision`] after init.
    pub fn create(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.entries.push(Entry {
            name: name.into(),
            value: Storage::F32(value),
        });
        ParamId(self.entries.len() - 1)
    }

    /// Current value of an f32 parameter.
    ///
    /// # Panics
    /// For [`Precision::Bf16`] parameters — those have no resident f32
    /// matrix; use [`ParamStore::decode_f32`] or
    /// [`ParamStore::gather_rows_f32`].
    pub fn value(&self, id: ParamId) -> &Matrix {
        match &self.entries[id.0].value {
            Storage::F32(m) => m,
            Storage::Bf16 { .. } => panic!(
                "parameter `{}` is stored bf16; decode it instead of borrowing",
                self.entries[id.0].name
            ),
        }
    }

    /// Mutable access to an f32 parameter (used by optimizers).
    ///
    /// # Panics
    /// For [`Precision::Bf16`] parameters (see [`ParamStore::value`]).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        let entry = &mut self.entries[id.0];
        match &mut entry.value {
            Storage::F32(m) => m,
            Storage::Bf16 { .. } => panic!(
                "parameter `{}` is stored bf16; decode it instead of borrowing",
                entry.name
            ),
        }
    }

    /// Storage precision of a parameter.
    pub fn precision(&self, id: ParamId) -> Precision {
        match &self.entries[id.0].value {
            Storage::F32(_) => Precision::F32,
            Storage::Bf16 { .. } => Precision::Bf16,
        }
    }

    /// `(rows, cols)` of a parameter, regardless of storage format.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        self.entries[id.0].value.shape()
    }

    /// Convert a parameter's storage format in place. `F32 -> Bf16`
    /// rounds each scalar to nearest-even (lossy, ≤ 2⁻⁸ relative);
    /// `Bf16 -> F32` is exact. Converting to the current format is a
    /// no-op.
    pub fn set_precision(&mut self, id: ParamId, precision: Precision) {
        let entry = &mut self.entries[id.0];
        match (&entry.value, precision) {
            (Storage::F32(m), Precision::Bf16) => {
                let (rows, cols) = m.shape();
                let mut bits = vec![0u16; m.len()];
                bf16_encode_slice(m.as_slice(), &mut bits);
                entry.value = Storage::Bf16 { rows, cols, bits };
            }
            (Storage::Bf16 { rows, cols, bits }, Precision::F32) => {
                let mut data = vec![0f32; bits.len()];
                bf16_decode_slice(bits, &mut data);
                entry.value = Storage::F32(Matrix::from_vec(*rows, *cols, data));
            }
            _ => {}
        }
    }

    /// Decode a parameter to a fresh f32 [`Matrix`] (exact for both
    /// storage formats). The optimizer uses this as the working copy for
    /// bf16 parameters.
    pub fn decode_f32(&self, id: ParamId) -> Matrix {
        match &self.entries[id.0].value {
            Storage::F32(m) => m.clone(),
            Storage::Bf16 { rows, cols, bits } => {
                let mut data = vec![0f32; bits.len()];
                bf16_decode_slice(bits, &mut data);
                Matrix::from_vec(*rows, *cols, data)
            }
        }
    }

    /// Write f32 values back into a parameter, rounding to the entry's
    /// storage format (nearest-even for bf16, exact for f32).
    ///
    /// # Panics
    /// If `src`'s shape differs from the parameter's.
    pub fn encode_from_f32(&mut self, id: ParamId, src: &Matrix) {
        let entry = &mut self.entries[id.0];
        assert_eq!(
            src.shape(),
            entry.value.shape(),
            "shape mismatch writing back `{}`",
            entry.name
        );
        match &mut entry.value {
            Storage::F32(m) => m.as_mut_slice().copy_from_slice(src.as_slice()),
            Storage::Bf16 { bits, .. } => bf16_encode_slice(src.as_slice(), bits),
        }
    }

    /// Decode selected rows into `out` (`out.rows() == idx.len()`,
    /// `out.cols() == cols`). This is the hot embedding-gather path: for
    /// bf16 tables only the indexed rows are decoded, never the full
    /// table.
    ///
    /// # Panics
    /// If `out`'s shape is not `(idx.len(), cols)` or an index is out of
    /// range.
    pub fn gather_rows_f32(&self, id: ParamId, idx: &[u32], out: &mut Matrix) {
        let (rows, cols) = self.entries[id.0].value.shape();
        assert_eq!(out.shape(), (idx.len(), cols), "gather output shape");
        let dst = out.as_mut_slice();
        match &self.entries[id.0].value {
            Storage::F32(m) => {
                let src = m.as_slice();
                for (i, &r) in idx.iter().enumerate() {
                    let r = r as usize;
                    assert!(r < rows, "gather index {r} out of {rows} rows");
                    dst[i * cols..(i + 1) * cols].copy_from_slice(&src[r * cols..(r + 1) * cols]);
                }
            }
            Storage::Bf16 { bits, .. } => {
                for (i, &r) in idx.iter().enumerate() {
                    let r = r as usize;
                    assert!(r < rows, "gather index {r} out of {rows} rows");
                    bf16_decode_slice(
                        &bits[r * cols..(r + 1) * cols],
                        &mut dst[i * cols..(i + 1) * cols],
                    );
                }
            }
        }
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters (model size).
    pub fn total_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Total payload bytes across all parameters — 4/scalar for f32
    /// entries, 2/scalar for bf16. The memory benchmark reports this to
    /// show the bf16 table halving.
    pub fn param_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match &e.value {
                Storage::F32(m) => m.len() * 4,
                Storage::Bf16 { bits, .. } => bits.len() * 2,
            })
            .sum()
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// True if any parameter contains NaN/Inf (training health check).
    pub fn any_non_finite(&self) -> bool {
        self.entries.iter().any(|e| match &e.value {
            Storage::F32(m) => m.has_non_finite(),
            Storage::Bf16 { bits, .. } => bits.iter().any(|&h| !bf16_decode(h).is_finite()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.create("w1", Matrix::zeros(2, 3));
        let b = s.create("w2", Matrix::full(1, 4, 2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(a).shape(), (2, 3));
        assert_eq!(s.value(b).get(0, 0), 2.0);
        assert_eq!(s.name(a), "w1");
        assert_eq!(s.total_scalars(), 10);
        assert_eq!(s.precision(a), Precision::F32);
        assert_eq!(s.param_bytes(), 40);
    }

    #[test]
    fn mutation_via_handle() {
        let mut s = ParamStore::new();
        let a = s.create("w", Matrix::zeros(1, 1));
        s.value_mut(a).set(0, 0, 5.0);
        assert_eq!(s.value(a).item(), 5.0);
    }

    #[test]
    fn non_finite_detector() {
        let mut s = ParamStore::new();
        let a = s.create("w", Matrix::zeros(1, 2));
        assert!(!s.any_non_finite());
        s.value_mut(a).set(0, 1, f32::NAN);
        assert!(s.any_non_finite());
        // The detector must survive the bf16 round trip too.
        s.set_precision(a, Precision::Bf16);
        assert!(s.any_non_finite());
    }

    #[test]
    fn bf16_conversion_halves_bytes_and_bounds_error() {
        let mut s = ParamStore::new();
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 - 31.5) * 0.37).collect();
        let a = s.create("table", Matrix::from_vec(8, 8, vals.clone()));
        assert_eq!(s.param_bytes(), 64 * 4);
        s.set_precision(a, Precision::Bf16);
        assert_eq!(s.precision(a), Precision::Bf16);
        assert_eq!(s.param_bytes(), 64 * 2);
        assert_eq!(s.shape(a), (8, 8));
        let dec = s.decode_f32(a);
        for (d, &x) in dec.as_slice().iter().zip(&vals) {
            assert!((d - x).abs() <= x.abs() / 256.0 + 1e-30, "{d} vs {x}");
        }
        // Converting back to f32 is exact w.r.t. the rounded values.
        s.set_precision(a, Precision::F32);
        assert_eq!(s.value(a).as_slice(), dec.as_slice());
    }

    #[test]
    fn gather_decodes_only_requested_rows() {
        let mut s = ParamStore::new();
        let vals: Vec<f32> = (0..12).map(|i| i as f32 * 1.25).collect();
        let a = s.create("t", Matrix::from_vec(4, 3, vals));
        let mut out_f32 = Matrix::zeros(3, 3);
        s.gather_rows_f32(a, &[2, 0, 2], &mut out_f32);
        assert_eq!(out_f32.row(0), s.value(a).row(2));
        assert_eq!(out_f32.row(1), s.value(a).row(0));
        s.set_precision(a, Precision::Bf16);
        let mut out_bf = Matrix::zeros(3, 3);
        s.gather_rows_f32(a, &[2, 0, 2], &mut out_bf);
        let dec = s.decode_f32(a);
        assert_eq!(out_bf.row(0), dec.row(2));
        assert_eq!(out_bf.row(1), dec.row(0));
        assert_eq!(out_bf.row(0), out_bf.row(2));
    }

    #[test]
    #[should_panic(expected = "stored bf16")]
    fn borrowing_a_bf16_param_panics() {
        let mut s = ParamStore::new();
        let a = s.create("t", Matrix::zeros(2, 2));
        s.set_precision(a, Precision::Bf16);
        let _ = s.value(a);
    }

    #[test]
    fn encode_from_f32_respects_storage() {
        let mut s = ParamStore::new();
        let a = s.create("t", Matrix::zeros(1, 2));
        s.set_precision(a, Precision::Bf16);
        s.encode_from_f32(a, &Matrix::from_vec(1, 2, vec![1.0, 0.1]));
        let dec = s.decode_f32(a);
        assert_eq!(dec.get(0, 0), 1.0); // exact in bf16
        assert!((dec.get(0, 1) - 0.1).abs() <= 0.1 / 256.0); // rounded
    }
}
