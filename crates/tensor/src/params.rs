//! Parameter storage shared by models and optimizers.
//!
//! A [`ParamStore`] owns every trainable matrix of a model. Layers hold
//! [`ParamId`] handles; each forward pass copies the current values onto the
//! [`crate::tape::Tape`] as leaves, and the optimizer applies gradients back
//! into the store. The store serialises with `serde`, which is how trained
//! models are checkpointed.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Stable handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(usize);

impl ParamId {
    pub(crate) fn index(self) -> usize {
        self.0
    }

    pub(crate) fn from_index(i: usize) -> Self {
        ParamId(i)
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct Entry {
    name: String,
    value: Matrix,
}

/// Owns the trainable parameters of a model.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<Entry>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter with a diagnostic name; returns its handle.
    pub fn create(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.entries.push(Entry {
            name: name.into(),
            value,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Mutable access (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar count across all parameters (model size).
    pub fn total_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// True if any parameter contains NaN/Inf (training health check).
    pub fn any_non_finite(&self) -> bool {
        self.entries.iter().any(|e| e.value.has_non_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.create("w1", Matrix::zeros(2, 3));
        let b = s.create("w2", Matrix::full(1, 4, 2.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(a).shape(), (2, 3));
        assert_eq!(s.value(b).get(0, 0), 2.0);
        assert_eq!(s.name(a), "w1");
        assert_eq!(s.total_scalars(), 10);
    }

    #[test]
    fn mutation_via_handle() {
        let mut s = ParamStore::new();
        let a = s.create("w", Matrix::zeros(1, 1));
        s.value_mut(a).set(0, 0, 5.0);
        assert_eq!(s.value(a).item(), 5.0);
    }

    #[test]
    fn non_finite_detector() {
        let mut s = ParamStore::new();
        let a = s.create("w", Matrix::zeros(1, 2));
        assert!(!s.any_non_finite());
        s.value_mut(a).set(0, 1, f32::NAN);
        assert!(s.any_non_finite());
    }
}
