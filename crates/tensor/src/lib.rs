//! `tg-tensor`: a minimal dense `f32` tensor library with reverse-mode
//! automatic differentiation, built as the training substrate for the TGAE
//! reproduction (ICDE 2025, "Efficient Learning-based Graph Simulation for
//! Temporal Graphs").
//!
//! The paper trains its models with PyTorch on a V100 GPU. This crate
//! replaces that stack with a CPU implementation that keeps the same
//! *batched* computation structure: the op set includes the row
//! gather/scatter and segment-softmax kernels needed to run merged
//! k-bipartite computation graphs (paper §IV-C, Fig. 4) as single fused
//! steps, parallelised across rows with a scoped thread pool.
//!
//! # Layout
//! - [`matrix`] — dense row-major matrix + raw kernels (matmul variants,
//!   gather/scatter, segment softmax).
//! - [`tape`] — the autodiff tape and op set, including fused losses.
//! - [`params`] — parameter storage shared between layers and optimizers.
//! - [`nn`] — Linear / MLP / Embedding layers.
//! - [`optim`] — Adam, SGD, gradient clipping.
//! - [`init`] — Xavier init, Box–Muller normals, categorical sampling.
//! - [`parallel`] — chunked thread-pool helpers.
//!
//! # Example
//! ```
//! use tg_tensor::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut store = ParamStore::new();
//! let mut rng = SmallRng::seed_from_u64(0);
//! let layer = Linear::new(&mut store, &mut rng, "demo", 3, 2);
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..10 {
//!     let mut tape = Tape::new();
//!     let x = tape.input(Matrix::full(4, 3, 1.0));
//!     let y = layer.forward(&mut tape, &store, x);
//!     let loss = tape.mean(y);
//!     let grads = tape.backward(loss);
//!     opt.step(&mut store, &grads);
//! }
//! ```

#![warn(missing_docs)]

pub mod bf16;
pub mod init;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod parallel;
pub mod params;
pub mod tape;

/// One-stop imports for model code.
pub mod prelude {
    pub use crate::bf16::{bf16_decode, bf16_encode};
    pub use crate::init::{
        normal_matrix, sample_categorical, sample_categorical_without_replacement, standard_normal,
        xavier_normal, xavier_uniform,
    };
    pub use crate::matrix::{
        active_microkernel, available_microkernels, force_microkernel, Matrix, MicrokernelKind,
    };
    pub use crate::nn::{Activation, Embedding, Linear, Mlp};
    pub use crate::optim::{clip_global_norm, Adam, Sgd};
    pub use crate::params::{ParamId, ParamStore, Precision};
    pub use crate::tape::{Gradients, SparseTarget, Tape, Var};
}

#[cfg(test)]
mod integration_tests {
    use crate::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::rc::Rc;

    /// End-to-end: a one-layer "attention" toy where messages from three
    /// source nodes are softmax-weighted into one target, trained so the
    /// target matches a known vector. Exercises gather/segment-softmax/
    /// scale_rows/scatter as a unit (the TGAT layer uses exactly this
    /// pipeline).
    #[test]
    fn attention_pipeline_trains() {
        let mut store = ParamStore::new();
        let mut rng = SmallRng::seed_from_u64(11);
        let emb = Embedding::new(&mut store, &mut rng, "emb", 4, 4);
        let att = Linear::new(&mut store, &mut rng, "att", 8, 1);
        let target = Matrix::from_vec(1, 4, vec![1.0, -1.0, 0.5, 0.0]);
        let src: Rc<Vec<u32>> = Rc::new(vec![0, 1, 2]);
        let dst: Rc<Vec<u32>> = Rc::new(vec![3, 3, 3]);
        let seg: Rc<Vec<u32>> = Rc::new(vec![0, 0, 0]);
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let mut tape = Tape::new();
            let all: Rc<Vec<u32>> = Rc::new(vec![0, 1, 2, 3]);
            let h = emb.forward(&mut tape, &store, all);
            let hs = tape.gather_rows(h, src.clone());
            let hd = tape.gather_rows(h, dst.clone());
            let cat = tape.concat_cols(hs, hd);
            let score = att.forward(&mut tape, &store, cat);
            let score = tape.leaky_relu(score, 0.2);
            let alpha = tape.segment_softmax(score, seg.clone(), 1);
            let weighted = tape.scale_rows(hs, alpha);
            let agg = tape.scatter_add_rows(weighted, seg.clone(), 1);
            let t = tape.input(target.clone());
            let d = tape.sub(agg, t);
            let sq = tape.mul(d, d);
            let loss = tape.sum(sq);
            last = tape.value(loss).item();
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        assert!(last < 1e-2, "attention toy did not converge: {last}");
    }
}
