//! Ablation benches for the design decisions called out in DESIGN.md §4:
//!
//! - **D1** degree-weighted vs uniform initial sampling (Eq. 2 vs TGAE-n)
//! - **D2** ego-graph vs random-walk context (th=20 vs th=1, TGAE-g)
//! - **D3** neighbor truncation on/off (TGAE-t) — wall-clock cost
//! - **D5** merged k-bipartite batching vs per-ego-graph encoding — the
//!   paper's O(nT) → O(nT/n_s) training-step claim
//! - **D6** dense vs candidate-sparse decoding softmax
//!
//! Quality counterparts of these ablations are produced by
//! `exp_table7`; these benches isolate the *cost* side.

#![allow(clippy::field_reassign_with_default)] // config-building style

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_datasets::SyntheticConfig;
use tg_sampling::{InitialNodeSampler, SamplerConfig};
use tgae::{Tgae, TgaeConfig};

fn bench_graph(nodes: usize) -> tg_graph::TemporalGraph {
    let cfg = SyntheticConfig {
        nodes,
        edges: nodes * 8,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(11))
}

/// D1: initial-node sampling strategies.
fn d1_node_sampling(c: &mut Criterion) {
    let g = bench_graph(800);
    let weighted = InitialNodeSampler::new(&g, true);
    let uniform = InitialNodeSampler::new(&g, false);
    let mut group = c.benchmark_group("d1_initial_sampling");
    group.bench_function("degree_weighted", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| weighted.sample_batch(64, &mut rng))
    });
    group.bench_function("uniform", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| uniform.sample_batch(64, &mut rng))
    });
    group.finish();
}

/// Shared runner: one forward+backward step under a sampler config.
fn step_time(c: &mut Criterion, label: &str, group: &str, cfg: TgaeConfig) {
    let g = bench_graph(600);
    let model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg.clone());
    let sampler = InitialNodeSampler::new(&g, cfg.sampler.degree_weighted);
    let mut grp = c.benchmark_group(group.to_string());
    grp.sample_size(10);
    grp.bench_function(label, |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let centers = sampler.sample_batch(cfg.batch_centers, &mut rng);
        b.iter(|| {
            let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
            tape.backward(loss)
        })
    });
    grp.finish();
}

/// D2: ego-graph (th=20) vs random-walk chain (th=1) context.
fn d2_ego_vs_walk(c: &mut Criterion) {
    step_time(c, "ego_th20", "d2_context", TgaeConfig::default());
    let mut walk = TgaeConfig::default();
    walk.sampler = SamplerConfig::default().random_walk_variant();
    step_time(c, "walk_th1", "d2_context", walk);
}

/// D3: truncation on (th=20) vs off (unbounded neighbors).
fn d3_truncation(c: &mut Criterion) {
    step_time(c, "truncated_th20", "d3_truncation", TgaeConfig::default());
    let mut unbounded = TgaeConfig::default();
    unbounded.sampler = SamplerConfig::default().no_truncation_variant();
    step_time(c, "unbounded", "d3_truncation", unbounded);
}

/// D5: one merged batch of 64 centers vs 64 single-center batches —
/// the bipartite-merge training-step reduction.
fn d5_bipartite_merge(c: &mut Criterion) {
    let g = bench_graph(600);
    let cfg = TgaeConfig::default();
    let model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg.clone());
    let sampler = InitialNodeSampler::new(&g, true);
    let mut grp = c.benchmark_group("d5_bipartite_merge");
    grp.sample_size(10);
    grp.bench_function("merged_batch_64", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let centers = sampler.sample_batch(64, &mut rng);
        b.iter(|| {
            let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
            tape.backward(loss)
        })
    });
    grp.bench_function("per_ego_64", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let centers = sampler.sample_batch(64, &mut rng);
        b.iter(|| {
            for &center in &centers {
                let (tape, loss, _) = model.forward_batch(&g, &[center], &mut rng);
                tape.backward(loss);
            }
        })
    });
    grp.finish();
}

/// D6: dense n-way softmax vs candidate-sparse decoding.
fn d6_dense_vs_sparse(c: &mut Criterion) {
    let mut dense = TgaeConfig::default();
    dense.dense_cutoff = usize::MAX;
    step_time(c, "dense_softmax", "d6_decode", dense);
    let mut sparse = TgaeConfig::default();
    sparse.dense_cutoff = 0; // force candidate sampling
    step_time(c, "sparse_softmax", "d6_decode", sparse);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = d1_node_sampling, d2_ego_vs_walk, d3_truncation, d5_bipartite_merge, d6_dense_vs_sparse
}
criterion_main!(benches);
