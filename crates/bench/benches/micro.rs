//! Criterion micro-benchmarks for the hot paths behind every table:
//! ego-graph sampling, computation-graph building, TGAT forward/backward,
//! motif census, snapshot statistics, and the core tensor kernels.

#![allow(clippy::field_reassign_with_default)] // config-building style

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_datasets::{GridPoint, SyntheticConfig};
use tg_graph::Snapshot;
use tg_metrics::{count_motifs, GraphStats};
use tg_sampling::{sample_ego_graph, ComputationGraph, InitialNodeSampler, SamplerConfig};
use tg_tensor::matrix::{matmul_nn, matmul_nn_naive, segment_softmax, Matrix};
use tgae::{Tgae, TgaeConfig};

fn bench_graph() -> tg_graph::TemporalGraph {
    let cfg = SyntheticConfig {
        nodes: 500,
        edges: 4000,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(1))
}

fn sampling_benches(c: &mut Criterion) {
    let g = bench_graph();
    let scfg = SamplerConfig::default();
    c.bench_function("ego_graph_sample_k2", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| sample_ego_graph(&g, (10, 3), &scfg, &mut rng))
    });
    let sampler = InitialNodeSampler::new(&g, true);
    c.bench_function("initial_node_batch_64", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| sampler.sample_batch(64, &mut rng))
    });
    for batch in [16usize, 64, 256] {
        c.bench_with_input(
            BenchmarkId::new("computation_graph_build", batch),
            &batch,
            |b, &batch| {
                let mut rng = SmallRng::seed_from_u64(4);
                let centers = sampler.sample_batch(batch, &mut rng);
                b.iter(|| ComputationGraph::build(&g, &centers, &scfg, &mut rng))
            },
        );
    }
}

fn model_benches(c: &mut Criterion) {
    let g = bench_graph();
    let cfg = TgaeConfig::default();
    let model = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
    let sampler = InitialNodeSampler::new(&g, true);
    c.bench_function("tgae_forward_batch_64", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        let centers = sampler.sample_batch(64, &mut rng);
        b.iter(|| model.forward_batch(&g, &centers, &mut rng))
    });
    c.bench_function("tgae_forward_backward_64", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let centers = sampler.sample_batch(64, &mut rng);
        b.iter(|| {
            let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
            tape.backward(loss)
        })
    });
    // backward in isolation, on a recorded tape (scratch pool warm)
    c.bench_function("tgae_backward_only_64", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let centers = sampler.sample_batch(64, &mut rng);
        let (tape, loss, _) = model.forward_batch(&g, &centers, &mut rng);
        b.iter(|| {
            let grads = tape.backward(loss);
            tape.recycle(grads);
        })
    });
    // the tape-reuse training step (forward_batch_into + recycle) vs the
    // allocate-per-step path above
    c.bench_function("tgae_step_reused_tape_64", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let centers = sampler.sample_batch(64, &mut rng);
        let mut tape = tg_tensor::tape::Tape::new();
        b.iter(|| {
            let (loss, _) = model.forward_batch_into(&mut tape, &g, &centers, &mut rng);
            let grads = tape.backward(loss);
            tape.recycle(grads);
        })
    });
}

fn metric_benches(c: &mut Criterion) {
    let g = bench_graph();
    c.bench_function("motif_census_exact", |b| b.iter(|| count_motifs(&g, 2)));
    let snap = Snapshot::accumulated(&g, g.n_timestamps() as u32 - 1, true);
    c.bench_function("graph_stats_full", |b| {
        b.iter(|| GraphStats::compute(&snap))
    });
    c.bench_function("snapshot_accumulate", |b| {
        b.iter(|| Snapshot::accumulated(&g, 9, true))
    });
}

fn tensor_benches(c: &mut Criterion) {
    let a = Matrix::from_fn(128, 128, |r, cc| ((r * 31 + cc) % 17) as f32 * 0.1);
    let bm = Matrix::from_fn(128, 128, |r, cc| ((r * 7 + cc) % 13) as f32 * 0.1);
    c.bench_function("matmul_128", |b| b.iter(|| matmul_nn(&a, &bm)));
    // tiled vs naive across the sizes the acceptance criteria track
    for size in [256usize, 512, 1024] {
        let a = Matrix::from_fn(size, size, |r, cc| {
            ((r * 31 + cc * 7) % 13) as f32 * 0.1 - 0.5
        });
        let bm = Matrix::from_fn(size, size, |r, cc| {
            ((r * 17 + cc * 3) % 11) as f32 * 0.1 - 0.4
        });
        c.bench_with_input(BenchmarkId::new("matmul_tiled", size), &size, |b, _| {
            b.iter(|| matmul_nn(&a, &bm))
        });
        c.bench_with_input(BenchmarkId::new("matmul_naive", size), &size, |b, _| {
            b.iter(|| matmul_nn_naive(&a, &bm))
        });
    }
    let scores = Matrix::from_fn(4096, 1, |r, _| (r % 37) as f32 * 0.05);
    let seg: Vec<u32> = (0..4096u32).map(|i| i / 16).collect();
    c.bench_function("segment_softmax_4096x256", |b| {
        b.iter(|| segment_softmax(&scores, &seg, 256))
    });
}

fn generation_benches(c: &mut Criterion) {
    let p = GridPoint {
        nodes: 500,
        timestamps: 5,
        density: 0.01,
    };
    let g = p.generate(7);
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 5;
    let mut session = tgae::Session::builder(&g)
        .config(cfg)
        .build()
        .expect("session");
    session.train().expect("train");
    c.bench_function("tgae_generate_500n_5t", |b| {
        let mut master = 8u64;
        b.iter(|| {
            master = master.wrapping_add(1);
            session
                .simulate_seeded(
                    master,
                    tg_graph::sink::GraphSink::new(g.n_nodes(), g.n_timestamps()),
                )
                .expect("simulate")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sampling_benches, model_benches, metric_benches, tensor_benches, generation_benches
}
criterion_main!(benches);
