//! `tg-bench`: the experiment harness regenerating every table and figure
//! of the TGAE paper.
//!
//! | Binary          | Reproduces |
//! |-----------------|------------|
//! | `exp_table2`    | Table II (dataset statistics) |
//! | `exp_table4_5`  | Tables IV & V (f_med / f_avg across 7 metrics) |
//! | `exp_table6`    | Table VI (temporal-motif MMD) |
//! | `exp_table7`    | Table VII (ablation variants) |
//! | `exp_fig5`      | Figure 5 (metric curves over timestamps, DBLP) |
//! | `exp_fig6`      | Figure 6 (time & peak-memory scalability sweeps) |
//!
//! Binaries print the paper-style table to stdout and write CSV artifacts
//! under `results/`. Common flags: `--scale`, `--seed`, `--epochs`,
//! `--budget-mb`, `--methods tgae,e-r,...`.
//!
//! Criterion micro/ablation benches live in `benches/`.

pub mod datasets;
pub mod memtrack;
pub mod methods;
pub mod obs;
pub mod runner;

pub use memtrack::TrackingAllocator;
pub use obs::ObsObserver;
