//! Training-run telemetry: a [`RunObserver`] that records each epoch's
//! loss, wall time, and heap high-water mark into the global `tg-obs`
//! metrics registry and (optionally) a `telemetry.jsonl` file.
//!
//! The observer lives in `tg-bench` rather than `tgae` because the heap
//! reading comes from [`memtrack`] — a binary that wants
//! non-zero heap telemetry must install
//! [`TrackingAllocator`](crate::TrackingAllocator) as its
//! `#[global_allocator]` (as `tgx-cli` and the experiment binaries do);
//! without it the heap fields are simply `0`, everything else still
//! works.
//!
//! Telemetry is *observation only*: the observer always returns
//! [`TrainControl::Continue`] and touches nothing the seeded training
//! trajectory depends on, so a run with telemetry writes bit-identical
//! parameters to one without (regression-tested in the CLI's
//! `telemetry_does_not_perturb_training` test).

use crate::memtrack;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use tgae::{EpochEvent, RunObserver, TrainControl};

/// Records per-epoch training telemetry into the metrics registry and an
/// optional JSONL file. Construct one per run with [`ObsObserver::new`],
/// then hand it to `Session::builder(..).observer(..)` (possibly composed
/// with a progress printer).
pub struct ObsObserver {
    run_label: String,
    sink: Option<BufWriter<File>>,
    epochs_seen: usize,
}

impl ObsObserver {
    /// A registry-only observer. `run_label` becomes the `run` label on
    /// the `train.*` metrics this observer emits.
    pub fn new(run_label: &str) -> ObsObserver {
        tg_obs::enable_metrics();
        ObsObserver {
            run_label: run_label.to_string(),
            sink: None,
            epochs_seen: 0,
        }
    }

    /// Additionally append one JSON record per epoch to `path`
    /// (`{"epoch":..,"loss":..,"wall_ns":..,"heap_peak_bytes":..,"heap_live_bytes":..}`).
    pub fn with_file(run_label: &str, path: &Path) -> std::io::Result<ObsObserver> {
        let mut obs = ObsObserver::new(run_label);
        obs.sink = Some(BufWriter::new(File::create(path)?));
        Ok(obs)
    }

    /// Epochs observed so far.
    pub fn epochs_seen(&self) -> usize {
        self.epochs_seen
    }

    fn record(&mut self, event: &EpochEvent) {
        self.epochs_seen += 1;
        let heap_peak = memtrack::peak_bytes();
        let heap_live = memtrack::current_bytes();
        let run = self.run_label.as_str();
        tg_obs::counter!("train.epochs", run = run).inc();
        tg_obs::gauge!("train.loss", run = run).set(f64::from(event.loss));
        tg_obs::gauge!("train.heap_peak_bytes", run = run).set(heap_peak as f64);
        tg_obs::histogram!("train.epoch.seconds", tg_obs::LATENCY_SECONDS, run = run)
            .observe(event.wall.as_secs_f64());
        if let Some(w) = self.sink.as_mut() {
            // Telemetry is best-effort by contract: a full disk must not
            // abort a training run, so write errors drop the file sink
            // (the registry keeps recording) rather than propagate.
            let line = format!(
                "{{\"epoch\":{},\"n_epochs\":{},\"loss\":{},\"wall_ns\":{},\"heap_peak_bytes\":{},\"heap_live_bytes\":{}}}",
                event.epoch,
                event.n_epochs,
                event.loss,
                event.wall.as_nanos(),
                heap_peak,
                heap_live
            );
            // Flushed per epoch so a crashed run still leaves its
            // trajectory on disk up to the last completed epoch.
            let ok = writeln!(w, "{line}").is_ok() && w.flush().is_ok();
            if !ok {
                self.sink = None;
            }
        }
    }
}

impl RunObserver for ObsObserver {
    fn on_epoch_end(&mut self, event: &EpochEvent) -> TrainControl {
        self.record(event);
        TrainControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn event(epoch: usize, loss: f32) -> EpochEvent {
        EpochEvent {
            epoch,
            n_epochs: 3,
            loss,
            wall: Duration::from_millis(4),
        }
    }

    #[test]
    fn observer_counts_epochs_and_feeds_the_registry() {
        let mut obs = ObsObserver::new("obs_unit_a");
        for e in 0..3 {
            assert!(matches!(
                obs.on_epoch_end(&event(e, 1.5 - e as f32 * 0.25)),
                TrainControl::Continue
            ));
        }
        assert_eq!(obs.epochs_seen(), 3);
        let snap = tg_obs::Registry::global().snapshot();
        let epochs = snap
            .iter()
            .find(|m| {
                m.name == "train.epochs" && m.labels == [("run".to_string(), "obs_unit_a".into())]
            })
            .expect("epoch counter registered");
        assert!(matches!(epochs.value, tg_obs::MetricValue::Counter(3)));
        let loss = snap
            .iter()
            .find(|m| {
                m.name == "train.loss" && m.labels == [("run".to_string(), "obs_unit_a".into())]
            })
            .expect("loss gauge registered");
        match loss.value {
            tg_obs::MetricValue::Gauge(v) => assert_eq!(v, 1.0, "last epoch's loss"),
            ref other => panic!("loss must be a gauge, got {other:?}"),
        }
    }

    #[test]
    fn file_sink_writes_one_record_per_epoch() {
        let dir = std::env::temp_dir().join(format!("tgx_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.jsonl");
        let mut obs = ObsObserver::with_file("obs_unit_b", &path).unwrap();
        for e in 0..3 {
            obs.on_epoch_end(&event(e, 0.5));
        }
        drop(obs);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"epoch\":0,\"n_epochs\":3,\"loss\":0.5,"));
        assert!(lines[2].contains("\"epoch\":2"));
        assert!(lines[2].contains("\"heap_peak_bytes\":"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
