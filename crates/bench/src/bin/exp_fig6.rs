//! Figure 6: scalability & efficiency — wall-clock time and peak heap
//! memory of inferring a new graph across three sweeps (nodes,
//! timestamps, edge density), axis labels `n*T*density` as in the paper.
//!
//! The paper reports GPU memory; the CPU analogue here is tracked peak
//! heap (see `memtrack`). E-R and B-A are included for time but, as in
//! the paper, not meaningful for "model memory".
//!
//! Usage:
//! `cargo run -p tg-bench --release --bin exp_fig6 \
//!    [--sweep nodes|timestamps|density|all] [--points k] [--epochs n]
//!    [--seed s] [--methods ...] [--budget-mb m]`

use tg_bench::memtrack::fmt_bytes;
use tg_bench::methods::{all_methods, filter_methods};
use tg_bench::runner::{run_method, write_results, Args, TablePrinter};
use tg_datasets::{density_sweep, node_sweep, timestamp_sweep, GridPoint};

#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let epochs = args.get_usize("epochs", 30);
    let points = args.get_usize("points", 5);
    let budget = args.get_usize("budget-mb", 4096) * (1 << 20);
    let sweep = args.get("sweep").unwrap_or("all").to_string();
    // Fig. 6's lineup: the learning-based methods (plus simple models for time)
    let default_methods = "TGAE,TGGAN,TagGen,NetGAN,TIGGER,DYMOND,VGAE,Graphite,SBMGNN";
    let filter = args.get("methods").unwrap_or(default_methods).to_string();

    let sweeps: Vec<(&str, Vec<GridPoint>)> = [
        ("nodes", node_sweep()),
        ("timestamps", timestamp_sweep()),
        ("density", density_sweep()),
    ]
    .into_iter()
    .filter(|(name, _)| sweep == "all" || sweep == *name)
    .map(|(name, pts)| (name, pts.into_iter().take(points).collect()))
    .collect();

    let mut csv =
        String::from("sweep,label,nodes,timestamps,density,method,seconds,peak_bytes,oom\n");
    for (sweep_name, pts) in &sweeps {
        println!("\nFigure 6 — {sweep_name} sweep (time / peak memory)\n");
        let probe = filter_methods(all_methods(epochs, seed), Some(&filter));
        let mut headers = vec!["Point".to_string()];
        headers.extend(probe.iter().map(|m| m.name().to_string()));
        let mut time_table = TablePrinter::new(headers.clone());
        let mut mem_table = TablePrinter::new(headers);
        for p in pts {
            let g = p.generate(seed);
            eprintln!(
                "[{}] n={} m={} T={}",
                p.label(),
                g.n_nodes(),
                g.n_edges(),
                g.n_timestamps()
            );
            let mut time_row = vec![p.label()];
            let mut mem_row = vec![p.label()];
            for mut m in filter_methods(all_methods(epochs, seed), Some(&filter)) {
                let outcome = run_method(m.as_mut(), &g, seed, budget);
                let secs = outcome.wall.as_secs_f64();
                eprintln!(
                    "  {:<8} {:>9.2}s peak={}{}",
                    outcome.method,
                    secs,
                    fmt_bytes(outcome.peak_bytes),
                    if outcome.is_oom() { " (OOM)" } else { "" }
                );
                csv.push_str(&format!(
                    "{},{},{},{},{},{},{:.4},{},{}\n",
                    sweep_name,
                    p.label(),
                    p.nodes,
                    p.timestamps,
                    p.density,
                    outcome.method,
                    secs,
                    outcome.peak_bytes,
                    outcome.is_oom()
                ));
                if outcome.is_oom() {
                    time_row.push("OOM".into());
                    mem_row.push("OOM".into());
                } else {
                    time_row.push(format!("{secs:.2}s"));
                    mem_row.push(fmt_bytes(outcome.peak_bytes));
                }
            }
            time_table.row(time_row);
            mem_table.row(mem_row);
        }
        println!("time:\n{}", time_table.render());
        println!("peak heap:\n{}", mem_table.render());
    }
    write_results("fig6_scalability.csv", &csv).expect("write fig6 csv");
    println!("wrote results/fig6_scalability.csv");
}
