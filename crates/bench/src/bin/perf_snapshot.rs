//! Perf snapshot: measures the current hot paths and writes
//! `BENCH_PR7.json` so future PRs have a numeric trajectory to compare
//! against (PR 1 wrote the naive-vs-tiled kernel pairs, PR 2 the
//! portable-vs-SIMD pairs and the xent fusion A/B, PR 3 the per-sink
//! generation throughput and streaming peak-heap A/B, PR 4 the
//! session-overhead and multi-process A/Bs, PR 5 the store ingest
//! A/Bs and throughput, PR 6 the fault-point zero-cost proof).
//!
//! PR 7 adds the resident simulation service (`tg-serve`). The new
//! entry is a **warm-vs-cold cache request latency A/B**: the same
//! simulate request through a real TCP server, once forced through a
//! model load on every request (capacity-1 cache, two alternating run
//! ids — the resident-service "before": what every `tgx-cli simulate`
//! invocation pays) and once against a resident model (pure cache
//! hits — the point of the daemon). The binary asserts warm < cold
//! rather than just recording it.
//!
//! The PR-6 contract is carried forward: this harness builds with the
//! faults feature **off** (only `tgx-cli` enables it by default), so
//! `faults_compiled` must read `false` and the store write/read
//! throughput entries — crossing a `fail_point!` per block — double as
//! the proof that disabled fault points cost nothing. (The serve crate
//! crosses three more fault points per request, all equally no-op
//! here.)
//!
//! Entry kinds in this snapshot (carried from PR 5 = the `tg-store`
//! out-of-core edge store + streaming training ingest):
//!
//! - **Ingest peak-heap A/B** — loading the observed graph for training
//!   from a text edge list (`load_edge_list`: staged raw triples +
//!   id-compaction maps + re-sort) vs streaming it from a TGES store
//!   (`StoreSource` → `GraphAssembler`: exact-capacity append, one
//!   resident block). Measured at 2000 nodes for 100k and 400k edges:
//!   the text path's peak *overhead above the final resident graph*
//!   grows with the edge count, the store path's stays at the
//!   block/chunk size — the input-side twin of PR 3's streaming-sink
//!   memory entry. (The paper's Fig. 6 memory story, applied to ingest.)
//! - **Store throughput** — edges/s for writing and for streaming back a
//!   2000-node store (sequential I/O both ways).
//! - **Absolute baselines** — end-to-end `fit` and `generate` wall times
//!   through the session, carried forward every PR for trend tracking.
//! - **Serve latency A/B** (new) — median wall time of one streamed
//!   simulate request over TCP, cold cache (`before_s`, a disk model
//!   load per request) vs warm cache (`after_s`, one resident
//!   `Arc`-shared model); `speedup` is the resident-service win.
//!
//! The snapshot also asserts (not just measures) that training from the
//! store reproduces the in-memory loss stream bit-for-bit.
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_bench::memtrack::{self, TrackingAllocator};
use tg_datasets::SyntheticConfig;
use tg_graph::sink::GraphSink;
use tg_graph::TemporalGraph;
use tg_store::StoreSource;
use tgae::{Session, TgaeConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call on the "before" side (absent for absolute
    /// baselines and throughput-only entries).
    before_s: Option<f64>,
    /// Median seconds per call, this PR (absent for memory-only entries).
    after_s: Option<f64>,
    /// `before_s / after_s` when both sides exist.
    speedup: Option<f64>,
    /// Edges per second (store-throughput entries).
    edges_per_s: Option<f64>,
    /// Peak heap bytes, before side (memory A/B entries only).
    before_peak_bytes: Option<usize>,
    /// Peak heap bytes, after side (memory A/B entries only).
    after_peak_bytes: Option<usize>,
}

impl Entry {
    fn timing(name: impl Into<String>, before_s: Option<f64>, after_s: f64) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s: Some(after_s),
            speedup: before_s.map(|b| b / after_s),
            edges_per_s: None,
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn throughput(name: impl Into<String>, seconds: f64, edges: usize) -> Self {
        Entry {
            name: name.into(),
            before_s: None,
            after_s: Some(seconds),
            speedup: None,
            edges_per_s: Some(edges as f64 / seconds),
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn memory(name: impl Into<String>, before_peak: usize, after_peak: usize) -> Self {
        Entry {
            name: name.into(),
            before_s: None,
            after_s: None,
            speedup: None,
            edges_per_s: None,
            before_peak_bytes: Some(before_peak),
            after_peak_bytes: Some(after_peak),
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    /// Whether the `tg-faults` machinery was compiled into this harness.
    /// Must be `false`: the perf numbers double as the zero-cost proof
    /// for disabled fault points.
    faults_compiled: bool,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn synthetic(nodes: usize, edges: usize, seed: u64) -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes,
        edges,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(seed))
}

fn small_cfg(epochs: usize) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg
}

/// Peak and live heap growth (bytes above the pre-call baseline) of one
/// graph-producing call.
fn measure_load(f: impl FnOnce() -> TemporalGraph) -> (usize, usize, TemporalGraph) {
    let baseline = memtrack::current_bytes();
    memtrack::reset_peak();
    let g = f();
    let peak = memtrack::peak_bytes().saturating_sub(baseline);
    let live = memtrack::current_bytes().saturating_sub(baseline);
    (peak, live, g)
}

/// One text-vs-store ingest A/B at a given scale; returns the entry plus
/// the loaded graphs' equality check.
fn ingest_ab(tmp: &std::path::Path, nodes: usize, edges: usize, entries: &mut Vec<Entry>) {
    let tag = format!("{}n_{}k", nodes, edges / 1000);
    let g = synthetic(nodes, edges, 42);
    let n_edges = g.n_edges();
    let text_path = tmp.join(format!("obs_{tag}.edges"));
    let store_path = tmp.join(format!("obs_{tag}.tgs"));
    tg_graph::io::save_edge_list(&g, &text_path).expect("write text");
    let write_s = median_time(3, || {
        tg_store::write_graph(&g, &store_path).expect("write store")
    });
    drop(g);

    // A: the pre-PR-5 training ingest — parse text, compact ids, re-sort.
    let (text_peak, text_live, g_text) =
        measure_load(|| tg_graph::io::load_edge_list(&text_path, None).expect("parse text"));
    drop(g_text);
    // B: stream the store through the chunked assembler.
    let (store_peak, store_live, g_store) = measure_load(|| {
        StoreSource::open(&store_path)
            .expect("open store")
            .load_graph()
            .expect("stream store")
    });

    // Overhead above the final resident graph is the honest comparison:
    // both sides must end up holding the graph itself.
    let text_over = text_peak.saturating_sub(text_live);
    let store_over = store_peak.saturating_sub(store_live);
    println!(
        "ingest_peak_{tag}: text {} (overhead {}) vs store {} (overhead {})",
        memtrack::fmt_bytes(text_peak),
        memtrack::fmt_bytes(text_over),
        memtrack::fmt_bytes(store_peak),
        memtrack::fmt_bytes(store_over),
    );
    entries.push(Entry::memory(
        format!("ingest_peak_{tag}"),
        text_peak,
        store_peak,
    ));
    entries.push(Entry::memory(
        format!("ingest_overhead_above_graph_{tag}"),
        text_over,
        store_over,
    ));

    let read_s = median_time(3, || {
        StoreSource::open(&store_path)
            .expect("open store")
            .load_graph()
            .expect("stream store")
    });
    println!(
        "store_write_{tag}: {:.1} ms ({:.1} Medges/s); store_read_{tag}: {:.1} ms ({:.1} Medges/s)",
        write_s * 1e3,
        n_edges as f64 / write_s / 1e6,
        read_s * 1e3,
        n_edges as f64 / read_s / 1e6
    );
    entries.push(Entry::throughput(
        format!("store_write_{tag}"),
        write_s,
        n_edges,
    ));
    entries.push(Entry::throughput(
        format!("store_read_{tag}"),
        read_s,
        n_edges,
    ));
    drop(g_store);
}

/// Warm-vs-cold request latency through a real TCP `tg-serve` server.
///
/// Cold side: a capacity-1 cache with two alternating run ids, so every
/// request evicts and reloads the model from disk — the per-invocation
/// price a non-resident `tgx-cli simulate` pays. Warm side: the same
/// request repeated against one resident model. Asserts warm < cold.
fn serve_latency_ab(tmp: &std::path::Path, entries: &mut Vec<Entry>) {
    use tg_serve::{Client, ServeConfig, Server};

    // A load-heavy shape: a wide node-embedding table makes the model
    // checkpoint expensive to deserialise (the cold cost under test)
    // while the short edge list keeps per-request generation cheap.
    let gen_cfg = SyntheticConfig {
        nodes: 2_000,
        edges: 500,
        timestamps: 3,
        ..Default::default()
    };
    let observed = tg_datasets::generate(&gen_cfg, &mut SmallRng::seed_from_u64(1));
    let mut model_cfg = small_cfg(4);
    model_cfg.d_in = 48;
    let mut session = Session::builder(&observed)
        .config(model_cfg)
        .seed(7)
        .build()
        .expect("session");
    session.train().expect("train");
    let model_path = tmp.join("serve_model.json");
    session.save_model(&model_path).expect("save model");
    drop(session);

    let loader_observed = std::sync::Arc::new(observed);
    let loader = Box::new(move |_run_id: &str| {
        let model = tgae::load(&model_path).map_err(|e| e.to_string())?;
        tgae::SharedRun::new(model, (*loader_observed).clone()).map_err(|e| e.to_string())
    });
    let cfg = ServeConfig {
        cache_capacity: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", loader, cfg).expect("bind ephemeral port");
    let addr = server.tcp_addr().expect("tcp server").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let mut request = |run_id: &str| {
        let t = Instant::now();
        let mut sink = Vec::new();
        let outcome = client.simulate(run_id, 9, &mut sink).expect("simulate");
        assert!(!sink.is_empty(), "request streamed no edges");
        (t.elapsed().as_secs_f64(), outcome.cache)
    };

    let mut cold: Vec<f64> = (0..8)
        .map(|i| {
            let (s, cache) = request(if i % 2 == 0 { "a" } else { "b" });
            assert_eq!(
                cache, "miss",
                "alternating ids must defeat a capacity-1 cache"
            );
            s
        })
        .collect();
    // Re-admit "a" outside the timed loop so the warm side is pure hits.
    request("a");
    let mut warm: Vec<f64> = (0..9)
        .map(|_| {
            let (s, cache) = request("a");
            assert_eq!(cache, "hit", "a repeated id must stay resident");
            s
        })
        .collect();
    cold.sort_by(f64::total_cmp);
    warm.sort_by(f64::total_cmp);
    let (cold_s, warm_s) = (cold[cold.len() / 2], warm[warm.len() / 2]);
    assert!(
        warm_s < cold_s,
        "resident model must beat a per-request load: warm {warm_s:.6}s vs cold {cold_s:.6}s"
    );
    println!(
        "serve_request_warm_vs_cold_cache: cold {:.2} ms vs warm {:.2} ms ({:.1}x)",
        cold_s * 1e3,
        warm_s * 1e3,
        cold_s / warm_s
    );
    entries.push(Entry::timing(
        "serve_request_warm_vs_cold_cache",
        Some(cold_s),
        warm_s,
    ));

    handle.shutdown();
    thread.join().expect("server thread").expect("clean drain");
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    assert!(
        !tg_faults::is_compiled(),
        "perf snapshot must run with fault injection compiled out \
         (its store numbers are the zero-cost-when-disabled evidence)"
    );
    println!("faults_compiled: false (store paths cross no-op fail points)");
    let mut entries = Vec::new();
    let tmp = std::env::temp_dir().join(format!("tgae_perf_snapshot_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");

    // --- absolute baselines for the trajectory (same names every PR) ---
    let g = synthetic(500, 4_000, 1);
    let fit_s = median_time(5, || {
        let mut s = Session::builder(&g)
            .config(small_cfg(30))
            .build()
            .expect("session");
        s.train().expect("train")
    });
    println!("fit_500n_30ep: {:.1} ms", fit_s * 1e3);
    entries.push(Entry::timing("fit_500n_30ep", None, fit_s));

    let mut trained = Session::builder(&g)
        .config(small_cfg(30))
        .build()
        .expect("session");
    trained.train().expect("train");
    let master = trained.seed_policy().simulation_master(0);
    let gen_s = median_time(9, || {
        trained
            .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
            .expect("simulate")
    });
    println!("generate_500n_10t: {:.1} ms", gen_s * 1e3);
    entries.push(Entry::timing("generate_500n_10t", None, gen_s));

    // --- bit-identity sanity: store-fed training == in-memory training ---
    {
        let store_path = tmp.join("sanity.tgs");
        tg_store::write_graph(&g, &store_path).expect("write store");
        let mut mem = Session::builder(&g)
            .config(small_cfg(5))
            .seed(7)
            .build()
            .expect("session");
        let mut src = StoreSource::open(&store_path).expect("open store");
        let mut stored = Session::builder_from_source(&mut src)
            .expect("ingest")
            .config(small_cfg(5))
            .seed(7)
            .build()
            .expect("session");
        let a = mem.train().expect("train").losses;
        let b = stored.train().expect("train").losses;
        assert_eq!(a, b, "store-fed training diverged from in-memory");
        println!(
            "bit-identity: store-fed losses == in-memory losses ({} epochs)",
            a.len()
        );
    }
    drop(trained);
    drop(g);

    // --- ingest peak-heap A/B: text parse vs store stream ---
    // Two scales at fixed node count: the text path's transient overhead
    // scales with edges, the store path's stays block-sized.
    ingest_ab(&tmp, 2000, 100_000, &mut entries);
    ingest_ab(&tmp, 2000, 400_000, &mut entries);

    // --- resident service: warm vs cold cache request latency ---
    serve_latency_ab(&tmp, &mut entries);

    std::fs::remove_dir_all(&tmp).ok();
    let snapshot = Snapshot {
        pr: 7,
        threads: tg_tensor::parallel::num_threads(),
        faults_compiled: tg_faults::is_compiled(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
