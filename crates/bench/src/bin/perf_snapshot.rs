//! Perf snapshot: measures the current hot paths and writes
//! `BENCH_PR4.json` so future PRs have a numeric trajectory to compare
//! against (PR 1 wrote the naive-vs-tiled kernel pairs, PR 2 the
//! portable-vs-SIMD pairs and the xent fusion A/B, PR 3 the per-sink
//! generation throughput and streaming peak-heap A/B).
//!
//! Entry kinds in this snapshot (PR 4 = the `Session` API + the
//! multi-process shard driver):
//!
//! - **Session-API overhead A/B** — the PR-3 free functions (`fit`,
//!   `generate`) vs the same work driven through `Session::train` /
//!   `Session::simulate_seeded`. The session layer is bookkeeping around
//!   the identical loop, so the target is ≤1% overhead (speedup ≈ 1.0);
//!   outputs are bit-identical by the session regression tests.
//! - **Single- vs multi-process sharded generation** — wall-clock of
//!   `tgx-cli simulate --shards {1,2,4}` (fork/exec one worker per
//!   shard, each loading the checkpointed model, then byte-merge)
//!   against the in-process run on the same trained run directory. On a
//!   1-core container the processes serialise, so this mostly prices the
//!   per-worker model-load + spawn overhead the driver pays for
//!   distribution; with real cores the shards run concurrently.
//! - **Absolute baselines** — end-to-end `fit` and `generate` wall
//!   times, carried forward every PR for trend tracking (now driven
//!   through the session).
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_bench::memtrack::TrackingAllocator;
use tg_datasets::SyntheticConfig;
use tg_graph::sink::GraphSink;
use tg_graph::TemporalGraph;
use tgae::{Session, Tgae, TgaeConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call on the "before" side (absent for absolute
    /// baselines and throughput-only entries).
    before_s: Option<f64>,
    /// Median seconds per call, this PR (absent for memory-only entries).
    after_s: Option<f64>,
    /// `before_s / after_s` when both sides exist.
    speedup: Option<f64>,
    /// Generated edges per second (generation-throughput entries).
    edges_per_s: Option<f64>,
    /// Peak heap bytes, before side (memory A/B entries only).
    before_peak_bytes: Option<usize>,
    /// Peak heap bytes, after side (memory A/B entries only).
    after_peak_bytes: Option<usize>,
}

impl Entry {
    fn timing(name: impl Into<String>, before_s: Option<f64>, after_s: f64) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s: Some(after_s),
            speedup: before_s.map(|b| b / after_s),
            edges_per_s: None,
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn throughput(name: impl Into<String>, seconds: f64, edges: usize) -> Self {
        Entry {
            name: name.into(),
            before_s: None,
            after_s: Some(seconds),
            speedup: None,
            edges_per_s: Some(edges as f64 / seconds),
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Interleaved A/B medians: run `(a, b)` pairs back to back so drift on a
/// shared/virtualised host hits both sides equally, **alternating which
/// side goes first** each rep so within-pair ordering effects (cache /
/// allocator state left by the first run) cancel too, then take per-side
/// medians. Sequential per-side runs were measured to swing ±10% either
/// way on the CI container, and fixed-order pairs still showed a
/// persistent ~5% bias toward the first side — both larger than any
/// effect being measured.
fn median_ab<O1, O2>(
    reps: usize,
    mut a: impl FnMut() -> O1,
    mut b: impl FnMut() -> O2,
) -> (f64, f64) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    let mut time_a = |sa: &mut Vec<f64>| {
        let t = Instant::now();
        std::hint::black_box(a());
        sa.push(t.elapsed().as_secs_f64());
    };
    let mut time_b = |sb: &mut Vec<f64>| {
        let t = Instant::now();
        std::hint::black_box(b());
        sb.push(t.elapsed().as_secs_f64());
    };
    for rep in 0..reps.max(4) {
        if rep % 2 == 0 {
            time_a(&mut sa);
            time_b(&mut sb);
        } else {
            time_b(&mut sb);
            time_a(&mut sa);
        }
    }
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    (sa[sa.len() / 2], sb[sb.len() / 2])
}

fn synthetic(nodes: usize, edges: usize, seed: u64) -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes,
        edges,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(seed))
}

fn small_cfg(epochs: usize) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg
}

/// The `tgx-cli` binary living next to this one in the target dir (both
/// are workspace release binaries, so a `cargo build --release
/// --workspace` places them together).
fn find_tgx_cli() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("tgx-cli");
    candidate.exists().then_some(candidate)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let mut entries = Vec::new();
    let tmp = std::env::temp_dir().join(format!("tgae_perf_snapshot_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");

    // --- session-API overhead A/B: fit vs Session::train ---
    let g = synthetic(500, 4_000, 1);
    let (free_fit, session_fit) = median_ab(
        5,
        || {
            let mut m = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg(30));
            #[allow(deprecated)]
            tgae::fit(&mut m, &g)
        },
        || {
            let mut s = Session::builder(&g)
                .config(small_cfg(30))
                .build()
                .expect("session");
            s.train().expect("train")
        },
    );
    println!(
        "session_overhead_fit_500n_30ep: free {:.1} ms -> session {:.1} ms ({:+.2}% overhead)",
        free_fit * 1e3,
        session_fit * 1e3,
        (session_fit / free_fit - 1.0) * 100.0
    );
    entries.push(Entry::timing(
        "session_overhead_fit_500n_30ep",
        Some(free_fit),
        session_fit,
    ));

    // --- session-API overhead A/B: generate vs Session::simulate_seeded
    //     (identical master seed, identical output) ---
    let mut trained = Session::builder(&g)
        .config(small_cfg(30))
        .build()
        .expect("session");
    trained.train().expect("train");
    let model = trained.model().clone();
    // the PR-3 wrapper draws one u64 from its rng as the engine master;
    // reproduce that draw so both sides run the identical manifest and
    // the outputs really are bit-identical
    let master: u64 = rand::Rng::gen(&mut SmallRng::seed_from_u64(8));
    let (free_gen, session_gen) = median_ab(
        9,
        || {
            let mut rng = SmallRng::seed_from_u64(8);
            #[allow(deprecated)]
            tgae::generate(&model, &g, &mut rng)
        },
        || {
            trained
                .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
                .expect("simulate")
        },
    );
    println!(
        "session_overhead_generate_500n_10t: free {:.1} ms -> session {:.1} ms ({:+.2}% overhead)",
        free_gen * 1e3,
        session_gen * 1e3,
        (session_gen / free_gen - 1.0) * 100.0
    );
    entries.push(Entry::timing(
        "session_overhead_generate_500n_10t",
        Some(free_gen),
        session_gen,
    ));

    // --- absolute baselines for the trajectory (same names every PR) ---
    println!("fit_500n_30ep: {:.1} ms", session_fit * 1e3);
    entries.push(Entry::timing("fit_500n_30ep", None, session_fit));
    println!("generate_500n_10t: {:.1} ms", session_gen * 1e3);
    entries.push(Entry::timing("generate_500n_10t", None, session_gen));

    // --- single- vs multi-process sharded generation through tgx-cli ---
    match find_tgx_cli() {
        None => {
            println!(
                "tgx-cli binary not found next to perf_snapshot — skipping the \
                 multi-process entries (build with `cargo build --release --workspace`)"
            );
        }
        Some(cli) => {
            let run_dir = tmp.join("procs_run");
            let status = std::process::Command::new(&cli)
                .args(["train", "--run-dir"])
                .arg(&run_dir)
                .args([
                    "--preset",
                    "dblp",
                    "--scale",
                    "0.12",
                    "--data-seed",
                    "7",
                    "--epochs",
                    "8",
                    "--quiet",
                ])
                .stdout(std::process::Stdio::null())
                .status()
                .expect("run tgx-cli train");
            assert!(status.success(), "tgx-cli train failed");
            let n_edges: usize = {
                let manifest = std::fs::read_to_string(run_dir.join("run.json")).expect("run.json");
                // cheap field scrape (no serde deps on the cli crate here)
                manifest
                    .split("\"n_edges\":")
                    .nth(1)
                    .and_then(|s| {
                        s.trim_start()
                            .chars()
                            .take_while(|c| c.is_ascii_digit())
                            .collect::<String>()
                            .parse()
                            .ok()
                    })
                    .expect("n_edges in run.json")
            };
            for shards in [1usize, 2, 4] {
                let secs = median_time(3, || {
                    let status = std::process::Command::new(&cli)
                        .args(["simulate", "--run-dir"])
                        .arg(&run_dir)
                        .args(["--shards", &shards.to_string(), "--quiet"])
                        .stdout(std::process::Stdio::null())
                        .status()
                        .expect("run tgx-cli simulate");
                    assert!(status.success(), "tgx-cli simulate failed");
                });
                println!(
                    "generate_sharded_{shards}proc: {:.1} ms ({:.0} kedges/s incl. spawn+load)",
                    secs * 1e3,
                    n_edges as f64 / secs / 1e3
                );
                entries.push(Entry::throughput(
                    format!("generate_sharded_{shards}proc"),
                    secs,
                    n_edges,
                ));
            }
            // in-process reference on the same run directory
            let in_proc = median_time(3, || {
                let status = std::process::Command::new(&cli)
                    .args(["simulate", "--run-dir"])
                    .arg(&run_dir)
                    .args(["--shards", "1", "--in-process", "--quiet"])
                    .stdout(std::process::Stdio::null())
                    .status()
                    .expect("run tgx-cli simulate");
                assert!(status.success(), "tgx-cli simulate failed");
            });
            println!(
                "generate_sharded_inprocess: {:.1} ms (driver, no fork/exec)",
                in_proc * 1e3
            );
            entries.push(Entry::throughput(
                "generate_sharded_inprocess",
                in_proc,
                n_edges,
            ));
        }
    }

    std::fs::remove_dir_all(&tmp).ok();
    let snapshot = Snapshot {
        pr: 4,
        threads: tg_tensor::parallel::num_threads(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
