//! Perf snapshot: measures the current hot paths and writes
//! `BENCH_PR2.json` so future PRs have a numeric trajectory to compare
//! against (PR 1 wrote `BENCH_PR1.json` with the naive-vs-tiled pairs).
//!
//! Entry kinds in this snapshot:
//!
//! - **Kernel before/after** — portable (auto-vectorised) vs runtime-
//!   dispatched SIMD microkernel for every matmul transpose variant, with
//!   GFLOP/s for the after side; this is the pairing behind PR 2's
//!   "improve on ~47 GFLOP/s at ≥512²" acceptance criterion. On hosts
//!   without AVX2+FMA both sides run the portable tile and the speedup
//!   hovers at 1.0.
//! - **Softmax** — scalar libm reference vs vectorised `fast_exp` rows
//!   (kept from PR 1 for trend tracking).
//! - **Training-step before/after** — materialised softmax-xent (the
//!   pre-fusion reference, `O(slots × candidates)` probs per decoder
//!   level) vs the fused recompute path, in both wall time and **peak
//!   heap bytes** (this binary installs the counting allocator from
//!   `tg_bench::memtrack`).
//! - **Absolute baselines** — end-to-end `fit` and `generate` wall times,
//!   recorded for trend tracking rather than comparison.
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_bench::memtrack::{self, TrackingAllocator};
use tg_datasets::SyntheticConfig;
use tg_sampling::InitialNodeSampler;
use tg_tensor::matrix::{
    active_microkernel, force_portable_microkernel, matmul_nn, matmul_nt, matmul_tn, softmax_rows,
    softmax_rows_naive, Matrix,
};
use tg_tensor::tape::Tape;
use tgae::{fit, generate, Tgae, TgaeConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call on the "before" side (absent for absolute
    /// baselines and memory-only entries).
    before_s: Option<f64>,
    /// Median seconds per call, this PR (absent for memory-only entries).
    after_s: Option<f64>,
    /// `before_s / after_s` when both sides exist.
    speedup: Option<f64>,
    /// Throughput of the after side, for kernel entries.
    gflops: Option<f64>,
    /// Peak heap bytes, before side (memory A/B entries only).
    before_peak_bytes: Option<usize>,
    /// Peak heap bytes, after side (memory A/B entries only).
    after_peak_bytes: Option<usize>,
}

impl Entry {
    fn timing(name: impl Into<String>, before_s: Option<f64>, after_s: f64) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s: Some(after_s),
            speedup: before_s.map(|b| b / after_s),
            gflops: None,
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    /// Microkernel the dispatcher selected on this host.
    microkernel: &'static str,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`, auto-scaled to non-trivial runs.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let microkernel = active_microkernel();
    println!("dispatched microkernel: {}", microkernel.name());
    let mut entries = Vec::new();

    // --- kernels: portable tile vs dispatched SIMD microkernel ---
    for &n in &[256usize, 512, 1024] {
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.5);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.1 - 0.4);
        let reps = if n >= 1024 { 5 } else { 9 };
        let flops = 2.0 * (n as f64).powi(3);
        type MatmulFn = fn(&Matrix, &Matrix) -> Matrix;
        let variants: [(&str, MatmulFn); 3] =
            [("nn", matmul_nn), ("nt", matmul_nt), ("tn", matmul_tn)];
        for (variant, mm) in variants {
            force_portable_microkernel(true);
            let portable = median_time(reps, || mm(&a, &b));
            force_portable_microkernel(false);
            let simd = median_time(reps, || mm(&a, &b));
            println!(
                "matmul_{variant}_{n}: portable {:.2} ms -> {} {:.2} ms ({:.2}x, {:.1} GFLOP/s)",
                portable * 1e3,
                microkernel.name(),
                simd * 1e3,
                portable / simd,
                flops / simd / 1e9,
            );
            let mut e = Entry::timing(format!("matmul_{variant}_{n}"), Some(portable), simd);
            e.gflops = Some(flops / simd / 1e9);
            entries.push(e);
        }
    }

    // --- softmax: scalar libm reference vs vectorised fast_exp ---
    {
        let logits = Matrix::from_fn(2496, 500, |r, c| ((r * 13 + c * 7) % 29) as f32 * 0.3 - 4.0);
        let naive = median_time(7, || softmax_rows_naive(&logits));
        let fast = median_time(7, || softmax_rows(&logits));
        println!(
            "softmax_rows_2496x500: naive {:.2} ms -> fast {:.2} ms ({:.2}x)",
            naive * 1e3,
            fast * 1e3,
            naive / fast
        );
        entries.push(Entry::timing("softmax_rows_2496x500", Some(naive), fast));
    }

    // --- peak training heap: materialised xent (pre-fusion) vs fused
    //     recompute. Uses a 2000-node graph so the dense decoder softmax
    //     has 2000 candidate columns per slot row — the regime where the
    //     per-level probs matrices are the largest single allocation.
    //     Measured first so no other tape's scratch pool is alive. ---
    {
        let g = {
            let cfg = SyntheticConfig {
                nodes: 2000,
                edges: 16_000,
                timestamps: 10,
                ..Default::default()
            };
            tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(3))
        };
        let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::default());
        let sampler = InitialNodeSampler::new(&g, true);
        let mut rng = SmallRng::seed_from_u64(5);
        let centers = sampler.sample_batch(64, &mut rng);
        let peak_of = |materialise: bool| -> usize {
            let mut tape = Tape::new();
            tape.set_materialise_xent(materialise);
            // warm step fills the scratch pool, then measure steady state
            for warm in [true, false] {
                if !warm {
                    memtrack::reset_peak();
                }
                for rep in 0..3u64 {
                    let mut r = SmallRng::seed_from_u64(2000 + rep);
                    let (loss, _) = model.forward_batch_into(&mut tape, &g, &centers, &mut r);
                    let grads = tape.backward(loss);
                    tape.recycle(grads);
                }
            }
            memtrack::peak_bytes()
        };
        let mat_peak = peak_of(true);
        let fused_peak = peak_of(false);
        println!(
            "train_step_peak_heap_2000n: materialised {} -> fused {} ({:.2}x)",
            memtrack::fmt_bytes(mat_peak),
            memtrack::fmt_bytes(fused_peak),
            mat_peak as f64 / fused_peak as f64
        );
        entries.push(Entry {
            name: "train_step_peak_heap_2000n".into(),
            before_s: None,
            after_s: None,
            speedup: None,
            gflops: None,
            before_peak_bytes: Some(mat_peak),
            after_peak_bytes: Some(fused_peak),
        });
    }

    // --- training step wall time: materialised xent vs fused recompute
    //     (the fused path trades one extra fast_exp pass over target rows
    //     in backward for the probs memory; expect ~1.0x or slightly
    //     below, with the win in the peak-heap entry above) ---
    let g = {
        let cfg = SyntheticConfig {
            nodes: 500,
            edges: 4000,
            timestamps: 10,
            ..Default::default()
        };
        tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(1))
    };
    let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::default());
    let sampler = InitialNodeSampler::new(&g, true);
    let mut rng = SmallRng::seed_from_u64(5);
    let centers = sampler.sample_batch(64, &mut rng);
    // Interleaved A/B with identical per-rep seeds: sequential blocks
    // confound the comparison with machine-load drift, and a shared RNG
    // would give the two paths different sampled subgraphs.
    let mut mat_s = Vec::new();
    let mut fused_s = Vec::new();
    let mut mat_tape = Tape::new();
    mat_tape.set_materialise_xent(true);
    let mut fused_tape = Tape::new();
    let step = |tape: &mut Tape, rep: u64| -> f64 {
        let mut r = SmallRng::seed_from_u64(1000 + rep);
        let t = Instant::now();
        let (loss, _) = model.forward_batch_into(tape, &g, &centers, &mut r);
        let grads = tape.backward(loss);
        tape.recycle(grads);
        t.elapsed().as_secs_f64()
    };
    for rep in 0..12u64 {
        mat_s.push(step(&mut mat_tape, rep));
        fused_s.push(step(&mut fused_tape, rep));
    }
    // drop the first (warmup) pair, take medians
    mat_s.remove(0);
    fused_s.remove(0);
    mat_s.sort_by(f64::total_cmp);
    fused_s.sort_by(f64::total_cmp);
    let mat = mat_s[mat_s.len() / 2];
    let fused = fused_s[fused_s.len() / 2];
    println!(
        "train_step_64: materialised-xent {:.2} ms -> fused-xent {:.2} ms ({:.2}x)",
        mat * 1e3,
        fused * 1e3,
        mat / fused
    );
    entries.push(Entry::timing("train_step_64", Some(mat), fused));

    // --- absolute baselines for the trajectory ---
    let mut small_cfg = TgaeConfig::tiny();
    small_cfg.epochs = 30;
    let fit_time = median_time(3, || {
        let mut m = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg.clone());
        fit(&mut m, &g)
    });
    println!("fit_500n_30ep: {:.1} ms", fit_time * 1e3);
    entries.push(Entry::timing("fit_500n_30ep", None, fit_time));

    let mut gen_model = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg.clone());
    fit(&mut gen_model, &g);
    let gen_time = median_time(3, || {
        let mut rng = SmallRng::seed_from_u64(8);
        generate(&gen_model, &g, &mut rng)
    });
    println!("generate_500n_10t: {:.1} ms", gen_time * 1e3);
    entries.push(Entry::timing("generate_500n_10t", None, gen_time));

    let snapshot = Snapshot {
        pr: 2,
        threads: tg_tensor::parallel::num_threads(),
        microkernel: microkernel.name(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
