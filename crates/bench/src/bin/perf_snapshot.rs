//! Perf snapshot: measures the current hot paths and writes
//! `BENCH_PR3.json` so future PRs have a numeric trajectory to compare
//! against (PR 1 wrote the naive-vs-tiled kernel pairs, PR 2 the
//! portable-vs-SIMD pairs and the xent fusion A/B).
//!
//! Entry kinds in this snapshot (PR 3 = the sharded streaming engine):
//!
//! - **Generation throughput per sink** — end-to-end `edges/s` through
//!   the plan → execute → emit pipeline at 500 and 2000 nodes, for each
//!   `EdgeSink`: `GraphSink` (in-memory graph), `StreamingWriterSink`
//!   (edge-list text to a temp file), and `StatsSink` (online statistics,
//!   no edge storage). The three should be within a few percent of each
//!   other — decode dominates — which is exactly the point: streaming
//!   costs ~nothing over materialising.
//! - **Peak-heap A/B: GraphSink vs StreamingWriterSink** at 2000 nodes —
//!   the streaming sink must sit measurably below the in-memory sink,
//!   because it never holds the edge set or the final graph.
//! - **Fresh-tape vs thread-local-tape decode** — `decode_rows_for_
//!   generation_into(&mut Tape::new(), ..)` per chunk vs the per-worker
//!   persistent tape path (`decode_rows_for_generation`), the generation
//!   analogue of the trainer's reused-tape story.
//! - **Absolute baselines** — end-to-end `fit` and `generate` wall
//!   times, carried forward every PR for trend tracking.
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_bench::memtrack::{self, TrackingAllocator};
use tg_datasets::SyntheticConfig;
use tg_graph::io::StreamingWriterSink;
use tg_graph::sink::{GraphSink, StatsSink};
use tg_graph::TemporalGraph;
use tg_tensor::tape::Tape;
use tgae::engine::{generate_with_sink, SimulationEngine};
use tgae::{fit, generate, Tgae, TgaeConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call on the "before" side (absent for absolute
    /// baselines and memory/throughput-only entries).
    before_s: Option<f64>,
    /// Median seconds per call, this PR (absent for memory-only entries).
    after_s: Option<f64>,
    /// `before_s / after_s` when both sides exist.
    speedup: Option<f64>,
    /// Generated edges per second (generation-throughput entries).
    edges_per_s: Option<f64>,
    /// Peak heap bytes, before side (memory A/B entries only).
    before_peak_bytes: Option<usize>,
    /// Peak heap bytes, after side (memory A/B entries only).
    after_peak_bytes: Option<usize>,
}

impl Entry {
    fn timing(name: impl Into<String>, before_s: Option<f64>, after_s: f64) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s: Some(after_s),
            speedup: before_s.map(|b| b / after_s),
            edges_per_s: None,
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn throughput(name: impl Into<String>, seconds: f64, edges: usize) -> Self {
        Entry {
            name: name.into(),
            before_s: None,
            after_s: Some(seconds),
            speedup: None,
            edges_per_s: Some(edges as f64 / seconds),
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn synthetic(nodes: usize, edges: usize, seed: u64) -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes,
        edges,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(seed))
}

fn trained(g: &TemporalGraph, epochs: usize) -> Tgae {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    let mut m = Tgae::new(g.n_nodes(), g.n_timestamps(), cfg);
    fit(&mut m, g);
    m
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());
    let mut entries = Vec::new();
    let tmp = std::env::temp_dir().join(format!("tgae_perf_snapshot_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");

    // --- generation throughput per sink, 500 and 2000 nodes ---
    for &(nodes, edges) in &[(500usize, 8_000usize), (2000, 60_000)] {
        let g = synthetic(nodes, edges, 3);
        let model = trained(&g, 8);
        let master = 42u64;
        let reps = if nodes >= 2000 { 3 } else { 5 };

        let graph_s = median_time(reps, || {
            generate_with_sink(
                &model,
                &g,
                master,
                GraphSink::new(g.n_nodes(), g.n_timestamps()),
            )
        });
        let stream_path = tmp.join(format!("gen_{nodes}.edges"));
        let stream_s = median_time(reps, || {
            generate_with_sink(
                &model,
                &g,
                master,
                StreamingWriterSink::create(&stream_path).expect("create stream file"),
            )
            .expect("stream generation")
        });
        let stats_s = median_time(reps, || {
            generate_with_sink(&model, &g, master, StatsSink::new(g.n_timestamps()))
        });
        for (sink, s) in [
            ("graph_sink", graph_s),
            ("streaming_sink", stream_s),
            ("stats_sink", stats_s),
        ] {
            println!(
                "generate_{nodes}n_{sink}: {:.1} ms ({:.0} kedges/s)",
                s * 1e3,
                g.n_edges() as f64 / s / 1e3
            );
            entries.push(Entry::throughput(
                format!("generate_{nodes}n_{sink}"),
                s,
                g.n_edges(),
            ));
        }
    }

    // --- peak-heap A/B at 2000 nodes: in-memory graph assembly vs
    //     streaming writer, on a dense 400k-edge budget where the edge
    //     set is the dominant sink-side allocation. One warm run first so
    //     worker thread-local tapes and scratch pools reach steady state;
    //     then each side reports its peak *delta above the pre-run live
    //     baseline* — the baseline (model, observed graph, retained
    //     scratch) is identical for both sinks, so the delta isolates
    //     what the sink itself holds: the full edge set + final graph
    //     build for `GraphSink`, only the bounded unit window + write
    //     buffer for `StreamingWriterSink`. ---
    {
        let g = synthetic(2000, 400_000, 3);
        let model = trained(&g, 6);
        let master = 42u64;
        let stream_path = tmp.join("peak_ab.edges");
        generate_with_sink(
            &model,
            &g,
            master,
            StatsSink::new(g.n_timestamps()), // warm the scratch pools
        );
        let peak_delta_of = |run: &dyn Fn()| -> usize {
            let live = memtrack::current_bytes();
            memtrack::reset_peak();
            run();
            memtrack::peak_bytes().saturating_sub(live)
        };
        let graph_peak = peak_delta_of(&|| {
            generate_with_sink(
                &model,
                &g,
                master,
                GraphSink::new(g.n_nodes(), g.n_timestamps()),
            );
        });
        let stream_peak = peak_delta_of(&|| {
            generate_with_sink(
                &model,
                &g,
                master,
                StreamingWriterSink::create(&stream_path).expect("create stream file"),
            )
            .expect("stream generation");
        });
        println!(
            "generate_2000n_400k_peak_heap_delta: graph {} -> streaming {} ({:.2}x)",
            memtrack::fmt_bytes(graph_peak),
            memtrack::fmt_bytes(stream_peak),
            graph_peak as f64 / stream_peak as f64
        );
        entries.push(Entry {
            name: "generate_2000n_400k_peak_heap_delta".into(),
            before_s: None,
            after_s: None,
            speedup: None,
            edges_per_s: None,
            before_peak_bytes: Some(graph_peak),
            after_peak_bytes: Some(stream_peak),
        });
    }

    // --- fresh-tape vs thread-local-tape decode (the pool-aware tape
    //     story): same chunk of centers, identical per-rep RNG seeds ---
    {
        let g = synthetic(500, 8_000, 3);
        let model = trained(&g, 8);
        let plan = SimulationEngine::new(&model, &g).plan(7);
        let unit = plan
            .units()
            .iter()
            .max_by_key(|u| u.budgets.len())
            .expect("non-empty plan");
        let centers: Vec<(u32, u32)> = unit.budgets.iter().map(|&(u, _, _)| (u, unit.t)).collect();
        let fresh = median_time(40, || {
            let mut tape = Tape::new();
            let mut rng = SmallRng::seed_from_u64(unit.seed);
            model.decode_rows_for_generation_into(&mut tape, &g, &centers, &mut rng)
        });
        let local = median_time(40, || {
            let mut rng = SmallRng::seed_from_u64(unit.seed);
            model.decode_rows_for_generation(&g, &centers, &mut rng)
        });
        println!(
            "decode_chunk_500n: fresh-tape {:.2} ms -> thread-local {:.2} ms ({:.2}x)",
            fresh * 1e3,
            local * 1e3,
            fresh / local
        );
        entries.push(Entry::timing("decode_chunk_500n", Some(fresh), local));
    }

    // --- absolute baselines for the trajectory ---
    let g = synthetic(500, 4_000, 1);
    let mut small_cfg = TgaeConfig::tiny();
    small_cfg.epochs = 30;
    let fit_time = median_time(3, || {
        let mut m = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg.clone());
        fit(&mut m, &g)
    });
    println!("fit_500n_30ep: {:.1} ms", fit_time * 1e3);
    entries.push(Entry::timing("fit_500n_30ep", None, fit_time));

    let mut gen_model = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg.clone());
    fit(&mut gen_model, &g);
    let gen_time = median_time(3, || {
        let mut rng = SmallRng::seed_from_u64(8);
        generate(&gen_model, &g, &mut rng)
    });
    println!("generate_500n_10t: {:.1} ms", gen_time * 1e3);
    entries.push(Entry::timing("generate_500n_10t", None, gen_time));

    std::fs::remove_dir_all(&tmp).ok();
    let snapshot = Snapshot {
        pr: 3,
        threads: tg_tensor::parallel::num_threads(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
