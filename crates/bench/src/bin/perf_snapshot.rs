//! Perf snapshot: measures the current hot paths and writes
//! `BENCH_PR8.json` so future PRs have a numeric trajectory to compare
//! against (PR 1 wrote the naive-vs-tiled kernel pairs, PR 2 the
//! portable-vs-SIMD pairs and the xent fusion A/B, PR 3 the per-sink
//! generation throughput and streaming peak-heap A/B, PR 4 the
//! session-overhead and multi-process A/Bs, PR 5 the store ingest
//! A/Bs and throughput, PR 6 the fault-point zero-cost proof, PR 7 the
//! warm-vs-cold serve cache latency).
//!
//! PR 8 closes the kernel ceiling, and this snapshot records the
//! evidence:
//!
//! - **Matmul GFLOP/s sweep** — square matmul at 256²/512²/1024²/2048²,
//!   once per available ISA level (portable / AVX2+FMA / AVX-512) via
//!   the scoped [`force_microkernel`] guard. The point of the new
//!   GEBP `jc`/NC loop is that the 1024²+ rates no longer fall off the
//!   512² rate (pre-PR-8 the packed 4 MB B panel was re-streamed per
//!   row block: ~60 → ~35 GFLOP/s).
//! - **Segment-softmax edges/s A/B** — the scalar-f64 reference
//!   (`segment_softmax_naive`) vs the blocked run-based kernel at 2×10⁶
//!   edges, on both the sorted-by-segment layout the encoder emits and
//!   a shuffled worst case (which pays an extra counting-sort
//!   permutation). Outputs are parity-checked here, not just timed.
//! - **bf16-vs-f32 A/B** — parameter payload bytes, resident model
//!   heap, and fit wall time for the same seeded model with
//!   f32 vs bf16 embedding tables (`TgaeConfig::precision`).
//! - **Absolute baselines** — end-to-end `fit` and `generate` wall
//!   times through the session, carried forward every PR for trend
//!   tracking, plus the store-fed-vs-in-memory training bit-identity
//!   assertion.
//!
//! The binary doubles as the CI kernel-dispatch gate: it prints
//! `active_microkernel()`, runs a bitwise matmul parity check forced to
//! **every** available ISA level, and fails if the portable fallback is
//! missing from the dispatch list.
//!
//! The PR-6 contract is carried forward: this harness builds with the
//! faults feature **off**, so `faults_compiled` must read `false`.
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_bench::memtrack::{self, TrackingAllocator};
use tg_datasets::SyntheticConfig;
use tg_graph::sink::GraphSink;
use tg_graph::TemporalGraph;
use tg_store::StoreSource;
use tg_tensor::matrix::{
    active_microkernel, available_microkernels, force_microkernel, matmul_nn, segment_softmax,
    segment_softmax_naive, Matrix, MicrokernelKind,
};
use tgae::{Precision, Session, TgaeConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call on the "before" side (absent for absolute
    /// baselines and rate-only entries).
    before_s: Option<f64>,
    /// Median seconds per call, this PR (absent for memory-only entries).
    after_s: Option<f64>,
    /// `before_s / after_s` when both sides exist.
    speedup: Option<f64>,
    /// Edges per second (segment-softmax / store entries).
    edges_per_s: Option<f64>,
    /// Billions of f32 FLOPs per second (matmul sweep entries).
    gflops: Option<f64>,
    /// Peak heap bytes, before side (memory A/B entries only).
    before_peak_bytes: Option<usize>,
    /// Peak heap bytes, after side (memory A/B entries only).
    after_peak_bytes: Option<usize>,
}

impl Entry {
    fn timing(name: impl Into<String>, before_s: Option<f64>, after_s: f64) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s: Some(after_s),
            speedup: before_s.map(|b| b / after_s),
            edges_per_s: None,
            gflops: None,
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn gflops(name: impl Into<String>, seconds: f64, flops: f64) -> Self {
        Entry {
            name: name.into(),
            before_s: None,
            after_s: Some(seconds),
            speedup: None,
            edges_per_s: None,
            gflops: Some(flops / seconds / 1e9),
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn edge_rate(
        name: impl Into<String>,
        before_s: Option<f64>,
        after_s: f64,
        edges: usize,
    ) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s: Some(after_s),
            speedup: before_s.map(|b| b / after_s),
            edges_per_s: Some(edges as f64 / after_s),
            gflops: None,
            before_peak_bytes: None,
            after_peak_bytes: None,
        }
    }

    fn memory(name: impl Into<String>, before_peak: usize, after_peak: usize) -> Self {
        Entry {
            name: name.into(),
            before_s: None,
            after_s: None,
            speedup: None,
            edges_per_s: None,
            gflops: None,
            before_peak_bytes: Some(before_peak),
            after_peak_bytes: Some(after_peak),
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    /// The microkernel runtime dispatch picked on this host.
    active_microkernel: String,
    /// Every ISA level the dispatch can fall back through, fastest
    /// first; must end with "portable".
    microkernels: Vec<String>,
    /// Whether the `tg-faults` machinery was compiled into this harness.
    /// Must be `false`: the perf numbers double as the zero-cost proof
    /// for disabled fault points.
    faults_compiled: bool,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn synthetic(nodes: usize, edges: usize, seed: u64) -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes,
        edges,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(seed))
}

fn small_cfg(epochs: usize) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg
}

/// CI kernel-dispatch gate: every available ISA level must reproduce the
/// portable kernel bitwise on integer-valued data, and the portable
/// fallback itself must be present in the dispatch list.
fn check_dispatch_parity() {
    let kernels = available_microkernels();
    assert!(
        kernels.contains(&MicrokernelKind::Portable),
        "portable fallback missing from the dispatch list: {kernels:?}"
    );
    // A shape with MR/NR/KC/NC remainders all at once.
    let (m, k, n) = (9usize, 300usize, 513usize);
    let a = Matrix::from_fn(m, k, |r, c| ((r * 3 + c * 11) % 7) as f32 - 3.0);
    let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 2) % 9) as f32 - 4.0);
    let reference = {
        let _g = force_microkernel(MicrokernelKind::Portable);
        matmul_nn(&a, &b)
    };
    for kind in kernels {
        let _g = force_microkernel(kind);
        assert_eq!(active_microkernel(), kind, "force hook failed for {kind:?}");
        assert_eq!(
            reference,
            matmul_nn(&a, &b),
            "{kind:?} disagrees with portable on integer data"
        );
        println!("dispatch parity: {} == portable (bitwise)", kind.name());
    }
}

/// Square-matmul GFLOP/s per ISA level. The jc/NC loop's job is keeping
/// the 1024²+ rates near the 512² rate.
fn matmul_sweep(entries: &mut Vec<Entry>) {
    for kind in available_microkernels() {
        let _g = force_microkernel(kind);
        for &n in &[256usize, 512, 1024, 2048] {
            // Portable at 2048² is ~seconds per rep; one size down tells
            // the same falloff story at a fraction of the wall time.
            if kind == MicrokernelKind::Portable && n > 1024 {
                continue;
            }
            let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 23) as f32 * 0.093 - 1.0);
            let b = Matrix::from_fn(n, n, |r, c| ((r * 13 + c * 5) % 19) as f32 * 0.081 - 0.7);
            let flops = 2.0 * (n as f64).powi(3);
            let reps = if n >= 1024 { 3 } else { 7 };
            let secs = median_time(reps, || matmul_nn(&a, &b));
            let name = format!("matmul_{n}sq_{}", kind.name());
            println!("{name}: {:.1} GFLOP/s", flops / secs / 1e9);
            entries.push(Entry::gflops(name, secs, flops));
        }
    }
}

/// Naive-vs-vectorised segment softmax at 2M edges, sorted and shuffled
/// segment layouts. Parity-asserted, then timed.
fn segment_softmax_ab(entries: &mut Vec<Entry>) {
    const N_EDGES: usize = 2_000_000;
    const RUN: usize = 20; // edges per segment, encoder-typical fan-in
    let n_seg = N_EDGES / RUN;
    let scores: Vec<f32> = (0..N_EDGES)
        .map(|i| ((i * 2654435761) % 1000) as f32 / 100.0 - 5.0)
        .collect();
    let m = Matrix::from_vec(N_EDGES, 1, scores);

    let sorted: Vec<u32> = (0..N_EDGES).map(|i| (i / RUN) as u32).collect();
    let mut shuffled = sorted.clone();
    // Deterministic Fisher-Yates (LCG) — the unsorted worst case.
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in (1..shuffled.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        shuffled.swap(i, (state % (i as u64 + 1)) as usize);
    }

    for (tag, seg) in [("sorted", &sorted), ("shuffled", &shuffled)] {
        let fast = segment_softmax(&m, seg, n_seg);
        let naive = segment_softmax_naive(&m, seg, n_seg);
        let max_diff = fast
            .as_slice()
            .iter()
            .zip(naive.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-5, "{tag}: parity diff {max_diff}");
        let naive_s = median_time(5, || segment_softmax_naive(&m, seg, n_seg));
        let fast_s = median_time(5, || segment_softmax(&m, seg, n_seg));
        println!(
            "segment_softmax_2m_{tag}: naive {:.1} ms vs vectorised {:.1} ms \
             ({:.1}x, {:.0} Medges/s)",
            naive_s * 1e3,
            fast_s * 1e3,
            naive_s / fast_s,
            N_EDGES as f64 / fast_s / 1e6
        );
        entries.push(Entry::edge_rate(
            format!("segment_softmax_2m_{tag}"),
            Some(naive_s),
            fast_s,
            N_EDGES,
        ));
    }
}

/// f32-vs-bf16 A/B on one seeded model: parameter payload bytes,
/// resident heap after build, and fit wall time.
fn bf16_ab(entries: &mut Vec<Entry>) {
    // A wide node table so the embedding storage dominates the model.
    let g = synthetic(5_000, 25_000, 11);
    let cfg_at = |precision: Precision| {
        let mut cfg = small_cfg(6);
        cfg.d_in = 48;
        cfg.precision = precision;
        cfg
    };
    let mut stats = Vec::new();
    for precision in [Precision::F32, Precision::Bf16] {
        let baseline = memtrack::current_bytes();
        let model = tgae::Tgae::new(g.n_nodes(), g.n_timestamps(), cfg_at(precision));
        let resident = memtrack::current_bytes().saturating_sub(baseline);
        let param_bytes = model.parameter_bytes();
        drop(model);
        let fit_s = median_time(3, || {
            let mut s = Session::builder(&g)
                .config(cfg_at(precision))
                .seed(5)
                .build()
                .expect("session");
            s.train().expect("train")
        });
        println!(
            "bf16_ab[{}]: params {} resident {} fit {:.1} ms",
            match precision {
                Precision::F32 => "f32",
                Precision::Bf16 => "bf16",
            },
            memtrack::fmt_bytes(param_bytes),
            memtrack::fmt_bytes(resident),
            fit_s * 1e3
        );
        stats.push((param_bytes, resident, fit_s));
    }
    let (f32_stats, bf_stats) = (&stats[0], &stats[1]);
    assert!(
        bf_stats.0 < f32_stats.0,
        "bf16 must shrink parameter payload: {} vs {}",
        bf_stats.0,
        f32_stats.0
    );
    entries.push(Entry::memory(
        "model_param_bytes_f32_vs_bf16",
        f32_stats.0,
        bf_stats.0,
    ));
    entries.push(Entry::memory(
        "model_resident_heap_f32_vs_bf16",
        f32_stats.1,
        bf_stats.1,
    ));
    entries.push(Entry::timing(
        "fit_5000n_6ep_f32_vs_bf16",
        Some(f32_stats.2),
        bf_stats.2,
    ));
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());
    assert!(
        !tg_faults::is_compiled(),
        "perf snapshot must run with fault injection compiled out \
         (its numbers are the zero-cost-when-disabled evidence)"
    );
    println!("faults_compiled: false");
    println!("active_microkernel: {}", active_microkernel().name());
    check_dispatch_parity();

    let mut entries = Vec::new();
    let tmp = std::env::temp_dir().join(format!("tgae_perf_snapshot_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");

    // --- kernel-layer evidence: GFLOP/s sweep + segment softmax ---
    matmul_sweep(&mut entries);
    segment_softmax_ab(&mut entries);

    // --- bf16 embedding-table storage A/B ---
    bf16_ab(&mut entries);

    // --- absolute baselines for the trajectory (same names every PR) ---
    let g = synthetic(500, 4_000, 1);
    let fit_s = median_time(5, || {
        let mut s = Session::builder(&g)
            .config(small_cfg(30))
            .build()
            .expect("session");
        s.train().expect("train")
    });
    println!("fit_500n_30ep: {:.1} ms", fit_s * 1e3);
    entries.push(Entry::timing("fit_500n_30ep", None, fit_s));

    let mut trained = Session::builder(&g)
        .config(small_cfg(30))
        .build()
        .expect("session");
    trained.train().expect("train");
    let master = trained.seed_policy().simulation_master(0);
    let gen_s = median_time(9, || {
        trained
            .simulate_seeded(master, GraphSink::new(g.n_nodes(), g.n_timestamps()))
            .expect("simulate")
    });
    println!("generate_500n_10t: {:.1} ms", gen_s * 1e3);
    entries.push(Entry::timing("generate_500n_10t", None, gen_s));

    // --- bit-identity sanity: store-fed training == in-memory training ---
    {
        let store_path = tmp.join("sanity.tgs");
        tg_store::write_graph(&g, &store_path).expect("write store");
        let mut mem = Session::builder(&g)
            .config(small_cfg(5))
            .seed(7)
            .build()
            .expect("session");
        let mut src = StoreSource::open(&store_path).expect("open store");
        let mut stored = Session::builder_from_source(&mut src)
            .expect("ingest")
            .config(small_cfg(5))
            .seed(7)
            .build()
            .expect("session");
        let a = mem.train().expect("train").losses;
        let b = stored.train().expect("train").losses;
        assert_eq!(a, b, "store-fed training diverged from in-memory");
        println!(
            "bit-identity: store-fed losses == in-memory losses ({} epochs)",
            a.len()
        );
    }

    std::fs::remove_dir_all(&tmp).ok();
    let snapshot = Snapshot {
        pr: 8,
        threads: tg_tensor::parallel::num_threads(),
        active_microkernel: active_microkernel().name().to_string(),
        microkernels: available_microkernels()
            .iter()
            .map(|k| k.name().to_string())
            .collect(),
        faults_compiled: tg_faults::is_compiled(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
