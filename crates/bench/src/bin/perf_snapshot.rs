//! Perf snapshot: measures the PR-1 hot paths and writes `BENCH_PR1.json`
//! so future PRs have a numeric trajectory to compare against.
//!
//! Three kinds of entries:
//!
//! - **Kernel before/after** — naive (seed) vs tiled matmul for every
//!   transpose variant, the pairing behind the ≥2x acceptance criterion.
//! - **Training-step before/after** — the seed's allocate-a-tape-per-step
//!   path (`forward_batch`) vs the reused-tape path (`forward_batch_into`
//!   + gradient recycling) on the same model and batch.
//! - **Absolute baselines** — end-to-end `fit` and `generate` wall times,
//!   recorded for trend tracking rather than comparison.
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_datasets::SyntheticConfig;
use tg_sampling::InitialNodeSampler;
use tg_tensor::matrix::{
    matmul_nn, matmul_nn_naive, matmul_nt, matmul_nt_naive, matmul_tn, matmul_tn_naive,
    softmax_rows, softmax_rows_naive, Matrix,
};
use tg_tensor::tape::Tape;
use tgae::{fit, generate, Tgae, TgaeConfig};

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call, seed implementation (absent for absolute
    /// baselines).
    before_s: Option<f64>,
    /// Median seconds per call, this PR.
    after_s: f64,
    /// `before_s / after_s` when both sides exist.
    speedup: Option<f64>,
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`, auto-scaled to non-trivial runs.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let mut entries = Vec::new();

    // --- kernels: naive (seed) vs tiled ---
    for &n in &[256usize, 512, 1024] {
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.5);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.1 - 0.4);
        let reps = if n >= 1024 { 3 } else { 7 };
        for (variant, naive, tiled) in [
            (
                "nn",
                median_time(reps, || matmul_nn_naive(&a, &b)),
                median_time(reps, || matmul_nn(&a, &b)),
            ),
            (
                "nt",
                median_time(reps, || matmul_nt_naive(&a, &b)),
                median_time(reps, || matmul_nt(&a, &b)),
            ),
            (
                "tn",
                median_time(reps, || matmul_tn_naive(&a, &b)),
                median_time(reps, || matmul_tn(&a, &b)),
            ),
        ] {
            println!(
                "matmul_{variant}_{n}: naive {:.2} ms -> tiled {:.2} ms ({:.2}x)",
                naive * 1e3,
                tiled * 1e3,
                naive / tiled
            );
            entries.push(Entry {
                name: format!("matmul_{variant}_{n}"),
                before_s: Some(naive),
                after_s: tiled,
                speedup: Some(naive / tiled),
            });
        }
    }

    // --- softmax: scalar libm reference vs vectorised fast_exp ---
    {
        let logits = Matrix::from_fn(2496, 500, |r, c| ((r * 13 + c * 7) % 29) as f32 * 0.3 - 4.0);
        let naive = median_time(7, || softmax_rows_naive(&logits));
        let fast = median_time(7, || softmax_rows(&logits));
        println!(
            "softmax_rows_2496x500: naive {:.2} ms -> fast {:.2} ms ({:.2}x)",
            naive * 1e3,
            fast * 1e3,
            naive / fast
        );
        entries.push(Entry {
            name: "softmax_rows_2496x500".into(),
            before_s: Some(naive),
            after_s: fast,
            speedup: Some(naive / fast),
        });
    }

    // --- training step: per-step tape allocation vs reused tape ---
    let g = {
        let cfg = SyntheticConfig {
            nodes: 500,
            edges: 4000,
            timestamps: 10,
            ..Default::default()
        };
        tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(1))
    };
    let model = Tgae::new(g.n_nodes(), g.n_timestamps(), TgaeConfig::default());
    let sampler = InitialNodeSampler::new(&g, true);
    let mut rng = SmallRng::seed_from_u64(5);
    let centers = sampler.sample_batch(64, &mut rng);
    // Interleaved A/B with identical per-rep seeds: sequential blocks
    // confound the comparison with machine-load drift, and a shared RNG
    // would give the two paths different sampled subgraphs.
    let mut fresh_s = Vec::new();
    let mut reused_s = Vec::new();
    let mut tape = Tape::new();
    for rep in 0..12u64 {
        let mut r = SmallRng::seed_from_u64(1000 + rep);
        let t = Instant::now();
        let (ftape, loss, _) = model.forward_batch(&g, &centers, &mut r);
        std::hint::black_box(ftape.backward(loss));
        fresh_s.push(t.elapsed().as_secs_f64());
        let mut r = SmallRng::seed_from_u64(1000 + rep);
        let t = Instant::now();
        let (loss, _) = model.forward_batch_into(&mut tape, &g, &centers, &mut r);
        let grads = tape.backward(loss);
        tape.recycle(grads);
        reused_s.push(t.elapsed().as_secs_f64());
    }
    // drop the first (warmup) pair, take medians
    fresh_s.remove(0);
    reused_s.remove(0);
    fresh_s.sort_by(f64::total_cmp);
    reused_s.sort_by(f64::total_cmp);
    let fresh = fresh_s[fresh_s.len() / 2];
    let reused = reused_s[reused_s.len() / 2];
    println!(
        "train_step_64: fresh-tape {:.2} ms -> reused-tape {:.2} ms ({:.2}x)",
        fresh * 1e3,
        reused * 1e3,
        fresh / reused
    );
    entries.push(Entry {
        name: "train_step_64".into(),
        before_s: Some(fresh),
        after_s: reused,
        speedup: Some(fresh / reused),
    });

    // --- absolute baselines for the trajectory ---
    let mut small_cfg = TgaeConfig::tiny();
    small_cfg.epochs = 30;
    let fit_time = median_time(3, || {
        let mut m = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg.clone());
        fit(&mut m, &g)
    });
    println!("fit_500n_30ep: {:.1} ms", fit_time * 1e3);
    entries.push(Entry {
        name: "fit_500n_30ep".into(),
        before_s: None,
        after_s: fit_time,
        speedup: None,
    });

    let mut gen_model = Tgae::new(g.n_nodes(), g.n_timestamps(), small_cfg.clone());
    fit(&mut gen_model, &g);
    let gen_time = median_time(3, || {
        let mut rng = SmallRng::seed_from_u64(8);
        generate(&gen_model, &g, &mut rng)
    });
    println!("generate_500n_10t: {:.1} ms", gen_time * 1e3);
    entries.push(Entry {
        name: "generate_500n_10t".into(),
        before_s: None,
        after_s: gen_time,
        speedup: None,
    });

    let snapshot = Snapshot {
        pr: 1,
        threads: tg_tensor::parallel::num_threads(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
