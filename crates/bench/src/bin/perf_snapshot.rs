//! Perf snapshot: measures the current hot paths and writes
//! `BENCH_PR10.json` so future PRs have a numeric trajectory to compare
//! against (PR 1 wrote the naive-vs-tiled kernel pairs, PR 2 the
//! portable-vs-SIMD pairs and the xent fusion A/B, PR 3 the per-sink
//! generation throughput and streaming peak-heap A/B, PR 4 the
//! session-overhead and multi-process A/Bs, PR 5 the store ingest
//! A/Bs and throughput, PR 6 the fault-point zero-cost proof, PR 7 the
//! warm-vs-cold serve cache latency, PR 8 the GEBP GFLOP/s sweep and
//! bf16 storage A/B).
//!
//! PR 10 adds workspace-wide telemetry (`tg-obs`), and this snapshot is
//! the **zero-cost-when-idle and zero-perturbation evidence**:
//!
//! - **Telemetry on/off A/B (training)** — the same seeded `fit` with no
//!   observer vs with the metrics registry enabled and an `ObsObserver`
//!   attached. The loss trajectories must be bit-identical and the wall
//!   times within noise of each other.
//! - **Trace on/off A/B (generation)** — the same seeded `generate`
//!   before any trace sink exists (spans compile to an inert branch) vs
//!   with a live span sink. The streamed bytes must be identical.
//! - **Serve latency histogram sample** — an in-process `tg-serve`
//!   round trip (1 cold, N warm), cross-checked against the
//!   `serve.request.seconds{cache=...}` histogram counts the server
//!   recorded in the global registry.
//! - **Absolute baselines** — `fit_500n_30ep` and `generate_500n_10t`,
//!   carried forward every PR for trend tracking, plus the
//!   store-fed-vs-in-memory training bit-identity assertion.
//!
//! The binary doubles as the CI kernel-dispatch gate: it prints
//! `active_microkernel()`, runs a bitwise matmul parity check forced to
//! **every** available ISA level, and fails if the portable fallback is
//! missing from the dispatch list.
//!
//! The PR-6 contract is carried forward: this harness builds with the
//! faults feature **off**, so `faults_compiled` must read `false`.
//!
//! Usage: `cargo run --release -p tg-bench --bin perf_snapshot [out.json]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;
use tg_bench::memtrack::TrackingAllocator;
use tg_bench::ObsObserver;
use tg_datasets::SyntheticConfig;
use tg_graph::io::StreamingWriterSink;
use tg_graph::TemporalGraph;
use tg_store::StoreSource;
use tg_tensor::matrix::{
    active_microkernel, available_microkernels, force_microkernel, matmul_nn, Matrix,
    MicrokernelKind,
};
use tgae::{RunObserver, Session, TgaeConfig};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

#[derive(Serialize)]
struct Entry {
    name: String,
    /// Median seconds per call on the "before" (telemetry-off) side;
    /// absent for absolute baselines.
    before_s: Option<f64>,
    /// Median seconds per call, this PR / telemetry-on side.
    after_s: f64,
    /// `before_s / after_s` when both sides exist. For the on/off A/Bs a
    /// value near 1.0 IS the result: telemetry costs nothing measurable.
    speedup: Option<f64>,
}

impl Entry {
    fn timing(name: impl Into<String>, before_s: Option<f64>, after_s: f64) -> Self {
        Entry {
            name: name.into(),
            before_s,
            after_s,
            speedup: before_s.map(|b| b / after_s),
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    pr: u32,
    threads: usize,
    /// The microkernel runtime dispatch picked on this host.
    active_microkernel: String,
    /// Every ISA level the dispatch can fall back through, fastest
    /// first; must end with "portable".
    microkernels: Vec<String>,
    /// Whether the `tg-faults` machinery was compiled into this harness.
    /// Must be `false`: the perf numbers double as the zero-cost proof
    /// for disabled fault points.
    faults_compiled: bool,
    entries: Vec<Entry>,
}

/// Median-of-samples wall time of `f`.
fn median_time<O>(reps: usize, mut f: impl FnMut() -> O) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(3))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn synthetic(nodes: usize, edges: usize, seed: u64) -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes,
        edges,
        timestamps: 10,
        ..Default::default()
    };
    tg_datasets::generate(&cfg, &mut SmallRng::seed_from_u64(seed))
}

fn small_cfg(epochs: usize) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg
}

/// CI kernel-dispatch gate: every available ISA level must reproduce the
/// portable kernel bitwise on integer-valued data, and the portable
/// fallback itself must be present in the dispatch list.
fn check_dispatch_parity() {
    let kernels = available_microkernels();
    assert!(
        kernels.contains(&MicrokernelKind::Portable),
        "portable fallback missing from the dispatch list: {kernels:?}"
    );
    // A shape with MR/NR/KC/NC remainders all at once.
    let (m, k, n) = (9usize, 300usize, 513usize);
    let a = Matrix::from_fn(m, k, |r, c| ((r * 3 + c * 11) % 7) as f32 - 3.0);
    let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c * 2) % 9) as f32 - 4.0);
    let reference = {
        let _g = force_microkernel(MicrokernelKind::Portable);
        matmul_nn(&a, &b)
    };
    for kind in kernels {
        let _g = force_microkernel(kind);
        assert_eq!(active_microkernel(), kind, "force hook failed for {kind:?}");
        assert_eq!(
            reference,
            matmul_nn(&a, &b),
            "{kind:?} disagrees with portable on integer data"
        );
        println!("dispatch parity: {} == portable (bitwise)", kind.name());
    }
}

/// Fit the standard baseline model, optionally with an `ObsObserver`
/// recording into the metrics registry, returning (median wall, losses).
fn fit_baseline(g: &TemporalGraph, telemetry: bool) -> (f64, Vec<f32>) {
    let mut losses = Vec::new();
    let secs = median_time(5, || {
        let mut builder = Session::builder(g).config(small_cfg(30));
        if telemetry {
            let mut obs = ObsObserver::new("perf_snapshot");
            builder = builder.observer(move |ev: &tgae::EpochEvent| obs.on_epoch_end(ev));
        }
        let mut s = builder.build().expect("session");
        let report = s.train().expect("train");
        losses = report.losses;
    });
    (secs, losses)
}

/// Stream the baseline generation into memory, returning (median wall,
/// bytes of one run).
fn generate_baseline(session: &Session<'_>, master: u64) -> (f64, Vec<u8>) {
    let mut bytes = Vec::new();
    let secs = median_time(9, || {
        let mut buf = Vec::new();
        session
            .simulate_seeded(master, StreamingWriterSink::new(&mut buf))
            .expect("simulate")
            .expect("in-memory write cannot fail");
        bytes = buf;
    });
    (secs, bytes)
}

/// The telemetry on/off A/B: same seeds, registry + observer + trace
/// sink live on the "on" side. Asserts bit-identity of losses and
/// streamed bytes, and that the on side stays within noise of off.
fn telemetry_ab(entries: &mut Vec<Entry>, tmp: &std::path::Path) {
    let g = synthetic(500, 4_000, 1);

    // OFF side first: the metrics gate and the trace sink are one-way
    // per-process switches, so the idle numbers must be taken before
    // anything is enabled.
    let (fit_off_s, losses_off) = fit_baseline(&g, false);
    println!("fit_500n_30ep (telemetry off): {:.1} ms", fit_off_s * 1e3);
    entries.push(Entry::timing("fit_500n_30ep", None, fit_off_s));

    let mut trained = Session::builder(&g)
        .config(small_cfg(30))
        .build()
        .expect("session");
    trained.train().expect("train");
    let master = trained.seed_policy().simulation_master(0);
    let (gen_off_s, bytes_off) = generate_baseline(&trained, master);
    println!("generate_500n_10t (trace off): {:.1} ms", gen_off_s * 1e3);
    entries.push(Entry::timing("generate_500n_10t", None, gen_off_s));

    // ON side: metrics registry live with a per-epoch observer, span
    // sink installed so every engine span is recorded for real.
    tg_obs::enable_metrics();
    tg_obs::trace::install(&tmp.join("perf_snapshot_trace.jsonl"), "perf_snapshot")
        .expect("install trace sink");
    let (fit_on_s, losses_on) = fit_baseline(&g, true);
    let (gen_on_s, bytes_on) = generate_baseline(&trained, master);
    tg_obs::trace::flush().expect("flush trace");

    assert_eq!(
        losses_off, losses_on,
        "telemetry perturbed the training trajectory"
    );
    assert_eq!(
        bytes_off, bytes_on,
        "tracing perturbed the generated edge stream"
    );
    // Within noise: generous bound, this is a sanity ratchet against
    // accidentally putting allocation or locking on the hot path, not a
    // microbenchmark.
    for (name, off, on) in [
        ("fit", fit_off_s, fit_on_s),
        ("generate", gen_off_s, gen_on_s),
    ] {
        assert!(
            on < off * 1.75 + 0.005,
            "telemetry-on {name} is {:.1}x telemetry-off — observability must be ~free \
             ({:.1} ms vs {:.1} ms)",
            on / off,
            on * 1e3,
            off * 1e3
        );
    }
    println!(
        "fit_500n_30ep_telemetry_ab: off {:.1} ms vs on {:.1} ms ({:.2}x), losses bit-identical",
        fit_off_s * 1e3,
        fit_on_s * 1e3,
        fit_off_s / fit_on_s
    );
    println!(
        "generate_500n_10t_trace_ab: off {:.1} ms vs on {:.1} ms ({:.2}x), bytes identical",
        gen_off_s * 1e3,
        gen_on_s * 1e3,
        gen_off_s / gen_on_s
    );
    entries.push(Entry::timing(
        "fit_500n_30ep_telemetry_ab",
        Some(fit_off_s),
        fit_on_s,
    ));
    entries.push(Entry::timing(
        "generate_500n_10t_trace_ab",
        Some(gen_off_s),
        gen_on_s,
    ));
}

/// One in-process serve round trip: 1 cold request, N warm ones, client
/// wall times recorded and cross-checked against the server's
/// `serve.request.seconds` histogram counts.
fn serve_latency_sample(entries: &mut Vec<Entry>) {
    use tg_serve::{Client, ServeConfig, Server};

    let g = synthetic(200, 1_500, 3);
    let mut session = Session::builder(&g)
        .config(small_cfg(4))
        .seed(9)
        .build()
        .expect("session");
    session.train().expect("train");
    let run = session.into_shared();
    let loader = Box::new(move |run_id: &str| {
        if run_id == "perf" {
            Ok(run.clone())
        } else {
            Err(format!("no run named `{run_id}`"))
        }
    });
    let server =
        Server::bind_tcp("127.0.0.1:0", loader, ServeConfig::default()).expect("bind server");
    let addr = server.tcp_addr().expect("tcp").to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let mut sink = Vec::new();
    let t = Instant::now();
    let outcome = client.simulate("perf", 1, &mut sink).expect("cold request");
    let cold_s = t.elapsed().as_secs_f64();
    assert_eq!(outcome.cache, "miss", "first request must be a cold load");

    const WARM: usize = 7;
    let warm_s = median_time(WARM, || {
        let mut sink = Vec::new();
        let outcome = client.simulate("perf", 2, &mut sink).expect("warm request");
        assert_eq!(outcome.cache, "hit");
    });
    handle.shutdown();
    thread.join().expect("server thread").expect("clean drain");

    // The server recorded every request in the global histogram —
    // telemetry agrees with what this client measured.
    let snap = tg_obs::Registry::global().snapshot();
    let count_for = |cache: &str| -> u64 {
        snap.iter()
            .find(|m| {
                m.name == "serve.request.seconds"
                    && m.labels == [("cache".to_string(), cache.to_string())]
            })
            .map(|m| match &m.value {
                tg_obs::MetricValue::Histogram(h) => h.count(),
                other => panic!("serve.request.seconds must be a histogram, got {other:?}"),
            })
            .unwrap_or(0)
    };
    assert_eq!(count_for("miss"), 1, "one cold request was issued");
    assert_eq!(
        count_for("hit"),
        WARM as u64,
        "every warm request must land in the hit histogram"
    );

    println!(
        "serve_request_latency: cold {:.1} ms, warm median {:.1} ms \
         (histogram: 1 miss / {WARM} hits)",
        cold_s * 1e3,
        warm_s * 1e3
    );
    entries.push(Entry::timing("serve_request_cold", None, cold_s));
    entries.push(Entry::timing("serve_request_warm", None, warm_s));
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    assert!(
        !tg_faults::is_compiled(),
        "perf snapshot must run with fault injection compiled out \
         (its numbers are the zero-cost-when-disabled evidence)"
    );
    println!("faults_compiled: false");
    println!("active_microkernel: {}", active_microkernel().name());
    check_dispatch_parity();

    let mut entries = Vec::new();
    let tmp = std::env::temp_dir().join(format!("tgae_perf_snapshot_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create temp dir");

    // --- the PR-10 evidence: serve histogram + telemetry on/off A/B.
    // The serve sample runs first so it measures the production shape
    // (metrics on, no trace sink); the A/B then installs the span sink,
    // which is a one-way per-process switch. ---
    serve_latency_sample(&mut entries);
    telemetry_ab(&mut entries, &tmp);

    // --- bit-identity sanity: store-fed training == in-memory training ---
    {
        let g = synthetic(500, 4_000, 1);
        let store_path = tmp.join("sanity.tgs");
        tg_store::write_graph(&g, &store_path).expect("write store");
        let mut mem = Session::builder(&g)
            .config(small_cfg(5))
            .seed(7)
            .build()
            .expect("session");
        let mut src = StoreSource::open(&store_path).expect("open store");
        let mut stored = Session::builder_from_source(&mut src)
            .expect("ingest")
            .config(small_cfg(5))
            .seed(7)
            .build()
            .expect("session");
        let a = mem.train().expect("train").losses;
        let b = stored.train().expect("train").losses;
        assert_eq!(a, b, "store-fed training diverged from in-memory");
        println!(
            "bit-identity: store-fed losses == in-memory losses ({} epochs)",
            a.len()
        );
    }

    std::fs::remove_dir_all(&tmp).ok();
    let snapshot = Snapshot {
        pr: 10,
        threads: tg_tensor::parallel::num_threads(),
        active_microkernel: active_microkernel().name().to_string(),
        microkernels: available_microkernels()
            .iter()
            .map(|k| k.name().to_string())
            .collect(),
        faults_compiled: tg_faults::is_compiled(),
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("wrote {out_path}");
}
