//! Table VII: ablation study — TGAE vs its four variants (TGAE-g random
//! walks, TGAE-t no truncation, TGAE-n uniform sampling, TGAE-p
//! non-probabilistic) on MSG / BITCOIN-A / BITCOIN-O, reporting the
//! Degree score (f_avg of mean degree) and the Motif MMD.
//!
//! Usage:
//! `cargo run -p tg-bench --release --bin exp_table7 \
//!    [--scale f] [--epochs n] [--seed s] [--sigma v] [--chunks c]`

use rand::{rngs::SmallRng, SeedableRng};
use tg_bench::datasets;
use tg_bench::methods::ablation_methods;
use tg_bench::runner::{run_method, sci, write_results, Args, TablePrinter};
use tg_metrics::{census_per_chunk_sampled, evaluate, mmd2_tv, MetricKind};

#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let epochs = args.get_usize("epochs", 60);
    let scale = args.get("scale").and_then(|s| s.parse::<f64>().ok());
    let sigma = args.get_f64("sigma", 1.0);
    let chunks = args.get_usize("chunks", 4);
    let dataset_list = args
        .get("datasets")
        .unwrap_or("MSG,BITCOIN-A,BITCOIN-O")
        .to_string();

    let mut headers = vec!["Dataset".to_string(), "Metric".to_string()];
    headers.extend(
        ablation_methods(1, seed)
            .iter()
            .map(|m| m.name().to_string()),
    );
    let mut table = TablePrinter::new(headers);

    for ds in dataset_list.split(',') {
        let ds = ds.trim();
        let (_, observed) = datasets::load(ds, scale, seed);
        let delta = (observed.n_timestamps() as u64 / 10).max(2);
        let real_dists: Vec<Vec<f64>> = census_per_chunk_sampled(
            &observed,
            delta,
            chunks,
            20_000,
            &mut SmallRng::seed_from_u64(seed),
        )
        .iter()
        .map(|c| c.distribution())
        .collect();
        eprintln!(
            "[{}] n={} m={} T={}",
            ds,
            observed.n_nodes(),
            observed.n_edges(),
            observed.n_timestamps()
        );
        let mut degree_row = vec![ds.to_string(), "Degree".to_string()];
        let mut motif_row = vec![ds.to_string(), "Motif".to_string()];
        for mut m in ablation_methods(epochs, seed) {
            let t0 = std::time::Instant::now();
            let outcome = run_method(m.as_mut(), &observed, seed, usize::MAX);
            let generated = outcome.generated.expect("no budget set");
            let scores = evaluate(&observed, &generated);
            let degree = scores
                .iter()
                .find(|s| s.kind == MetricKind::MeanDegree)
                .expect("mean degree present")
                .avg;
            let gen_dists: Vec<Vec<f64>> = census_per_chunk_sampled(
                &generated,
                delta,
                chunks,
                20_000,
                &mut SmallRng::seed_from_u64(seed),
            )
            .iter()
            .map(|c| c.distribution())
            .collect();
            let motif = mmd2_tv(&real_dists, &gen_dists, sigma);
            eprintln!(
                "  {:<8} {:>8.2?} degree={} motif={}",
                outcome.method,
                t0.elapsed(),
                sci(degree),
                sci(motif)
            );
            degree_row.push(sci(degree));
            motif_row.push(sci(motif));
        }
        table.row(degree_row);
        table.row(motif_row);
    }

    println!("\nTable VII — ablation study (smaller is better)\n");
    println!("{}", table.render());
    write_results("table7_ablation.csv", &table.to_csv()).expect("write table7");
    println!("wrote results/table7_ablation.csv");
}
