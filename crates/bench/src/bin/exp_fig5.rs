//! Figure 5: temporal-tendency curves on DBLP — six metrics (LCC, wedge,
//! claw, triangle, PLE, N-component) of the accumulated snapshots at each
//! of the 15 timestamps, for the original graph and each generator.
//!
//! Output: one CSV row per (metric, method, timestamp) with the log-scale
//! value the paper plots, plus a compact per-metric summary table of mean
//! |log10(gen) - log10(origin)| tracking error (how well each curve hugs
//! the original).
//!
//! Usage:
//! `cargo run -p tg-bench --release --bin exp_fig5 \
//!    [--dataset DBLP] [--scale f] [--epochs n] [--seed s] [--methods ...]`

use tg_bench::datasets;
use tg_bench::methods::{all_methods, filter_methods};
use tg_bench::runner::{run_method, write_results, Args, TablePrinter};
use tg_metrics::{metric_timeseries, MetricKind};

#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

/// The six metrics Fig. 5 plots (mean degree is skipped by the paper).
const FIG5_METRICS: [MetricKind; 6] = [
    MetricKind::Lcc,
    MetricKind::WedgeCount,
    MetricKind::ClawCount,
    MetricKind::TriangleCount,
    MetricKind::Ple,
    MetricKind::NComponents,
];

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let epochs = args.get_usize("epochs", 60);
    let scale = args.get("scale").and_then(|s| s.parse::<f64>().ok());
    let ds = args.get("dataset").unwrap_or("DBLP").to_string();

    let (_, observed) = datasets::load(&ds, scale, seed);
    eprintln!(
        "[{}] n={} m={} T={}",
        ds,
        observed.n_nodes(),
        observed.n_edges(),
        observed.n_timestamps()
    );
    let mut csv = String::from("metric,method,timestamp,value,log_value\n");
    let origin_series = metric_timeseries(&observed);
    let push_series = |name: &str, series: &[tg_metrics::MetricSeries], csv: &mut String| {
        for s in series {
            if !FIG5_METRICS.contains(&s.kind) {
                continue;
            }
            for (t, v) in s.values.iter().enumerate() {
                let log_v = if *v > 0.0 { v.ln() } else { 0.0 };
                csv.push_str(&format!(
                    "{},{},{},{},{}\n",
                    s.kind.name(),
                    name,
                    t,
                    v,
                    log_v
                ));
            }
        }
    };
    push_series("Origin", &origin_series, &mut csv);

    // Fig. 5's method lineup (no E-R/B-A — the paper plots the learned ones)
    let default_methods = "TGAE,TIGGER,DYMOND,TGGAN,TagGen,NetGAN,VGAE,Graphite,SBMGNN";
    let filter = args.get("methods").unwrap_or(default_methods).to_string();
    let methods = filter_methods(all_methods(epochs, seed), Some(&filter));

    let mut headers = vec!["Metric".to_string()];
    let mut tracking: Vec<(String, Vec<f64>)> = Vec::new();
    for mut m in methods {
        let t0 = std::time::Instant::now();
        let outcome = run_method(m.as_mut(), &observed, seed, usize::MAX);
        let generated = outcome.generated.expect("no budget for fig5");
        let series = metric_timeseries(&generated);
        push_series(&outcome.method, &series, &mut csv);
        // tracking error per metric: mean |log(gen) - log(origin)|
        let mut errs = Vec::new();
        for kind in FIG5_METRICS {
            let o = origin_series
                .iter()
                .find(|s| s.kind == kind)
                .expect("origin metric");
            let g = series
                .iter()
                .find(|s| s.kind == kind)
                .expect("generated metric");
            let e: f64 = o
                .values
                .iter()
                .zip(&g.values)
                .map(|(a, b)| {
                    let la = a.max(1e-9).ln();
                    let lb = b.max(1e-9).ln();
                    (la - lb).abs()
                })
                .sum::<f64>()
                / o.values.len() as f64;
            errs.push(e);
        }
        eprintln!("  {:<8} {:>8.2?}", outcome.method, t0.elapsed());
        headers.push(outcome.method.clone());
        tracking.push((outcome.method, errs));
    }

    let mut table = TablePrinter::new(headers);
    for (i, kind) in FIG5_METRICS.iter().enumerate() {
        let mut row = vec![kind.name().to_string()];
        for (_, errs) in &tracking {
            row.push(format!("{:.3}", errs[i]));
        }
        table.row(row);
    }
    println!("\nFigure 5 — mean |log(gen) − log(origin)| curve-tracking error on {ds}");
    println!("(smaller = the method's curve hugs the original graph's curve)\n");
    println!("{}", table.render());
    write_results("fig5_timeseries.csv", &csv).expect("write fig5 csv");
    write_results("fig5_tracking_error.csv", &table.to_csv()).expect("write fig5 summary");
    println!("wrote results/fig5_timeseries.csv, results/fig5_tracking_error.csv");
}
