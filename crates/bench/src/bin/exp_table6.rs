//! Table VI: Maximum Mean Discrepancy between the δ-temporal motif
//! distributions (all 2-/3-node 3-edge motifs) of the raw and generated
//! temporal networks, on all seven datasets.
//!
//! Motif censuses are taken per time chunk; the resulting per-chunk
//! distributions are the sample sets of the Gaussian-TV MMD (Eq. 1).
//!
//! Usage:
//! `cargo run -p tg-bench --release --bin exp_table6 \
//!    [--scale f] [--epochs n] [--seed s] [--budget-mb m] [--sigma v]
//!    [--delta d] [--chunks c] [--methods ...] [--datasets ...]`

use rand::{rngs::SmallRng, SeedableRng};
use tg_bench::datasets;
use tg_bench::methods::{all_methods, filter_methods};
use tg_bench::runner::{run_method, sci, write_results, Args, TablePrinter};
use tg_metrics::{census_per_chunk_sampled, mmd2_tv};

#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let epochs = args.get_usize("epochs", 60);
    let scale = args.get("scale").and_then(|s| s.parse::<f64>().ok());
    let budget = args.get_usize("budget-mb", 1024) * (1 << 20);
    let sigma = args.get_f64("sigma", 1.0);
    let chunks = args.get_usize("chunks", 4);
    let dataset_list = args
        .get("datasets")
        .unwrap_or("DBLP,MSG,BITCOIN-A,BITCOIN-O,EMAIL,MATH,UBUNTU")
        .to_string();

    let probe = filter_methods(all_methods(epochs, seed), args.get("methods"));
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(probe.iter().map(|m| m.name().to_string()));
    let mut table = TablePrinter::new(headers);

    for ds in dataset_list.split(',') {
        let ds = ds.trim();
        let (_, observed) = datasets::load(ds, scale, seed);
        // δ scales with the time axis so every dataset has motif mass
        let delta = args.get_u64("delta", (observed.n_timestamps() as u64 / 10).max(2));
        let real_census = census_per_chunk_sampled(
            &observed,
            delta,
            chunks,
            20_000,
            &mut SmallRng::seed_from_u64(seed),
        );
        let real_dists: Vec<Vec<f64>> = real_census.iter().map(|c| c.distribution()).collect();
        eprintln!(
            "[{}] n={} m={} T={} delta={} (real motifs: {})",
            ds,
            observed.n_nodes(),
            observed.n_edges(),
            observed.n_timestamps(),
            delta,
            real_census.iter().map(|c| c.total()).sum::<u64>()
        );
        let methods = filter_methods(all_methods(epochs, seed), args.get("methods"));
        let mut row = vec![ds.to_string()];
        for mut m in methods {
            let t0 = std::time::Instant::now();
            let outcome = run_method(m.as_mut(), &observed, seed, budget);
            let cell = match &outcome.generated {
                Some(generated) => {
                    let gen_census = census_per_chunk_sampled(
                        generated,
                        delta,
                        chunks,
                        20_000,
                        &mut SmallRng::seed_from_u64(seed),
                    );
                    let gen_dists: Vec<Vec<f64>> =
                        gen_census.iter().map(|c| c.distribution()).collect();
                    sci(mmd2_tv(&real_dists, &gen_dists, sigma))
                }
                None => "OOM".to_string(),
            };
            eprintln!("  {:<8} {:>8.2?} -> {}", outcome.method, t0.elapsed(), cell);
            row.push(cell);
        }
        table.row(row);
    }

    println!("\nTable VI — temporal-motif MMD (smaller is better, sigma={sigma})\n");
    println!("{}", table.render());
    write_results("table6_motif_mmd.csv", &table.to_csv()).expect("write table6");
    println!("wrote results/table6_motif_mmd.csv");
}
