//! Tables IV & V: f_med / f_avg comparison across the seven Table III
//! metrics, eleven methods, on DBLP / MATH / UBUNTU.
//!
//! Each method trains on the observed synthetic dataset and generates a
//! temporal graph with the observed per-timestamp edge budget; the
//! accumulated snapshots are compared metric-by-metric (Eq. 10). Methods
//! whose tracked peak heap exceeds the budget are reported as OOM, the
//! paper's convention.
//!
//! Usage:
//! `cargo run -p tg-bench --release --bin exp_table4_5 \
//!    [--datasets DBLP,MATH,UBUNTU] [--scale f] [--epochs n] [--seed s]
//!    [--budget-mb m] [--methods tgae,tigger,...]`

use tg_bench::datasets;
use tg_bench::methods::{all_methods, filter_methods};
use tg_bench::runner::{run_method, sci, write_results, Args, TablePrinter};
use tg_metrics::{evaluate, MetricKind};

#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let epochs = args.get_usize("epochs", 60);
    let scale = args.get("scale").and_then(|s| s.parse::<f64>().ok());
    let budget = args.get_usize("budget-mb", 1024) * (1 << 20);
    let dataset_list = args
        .get("datasets")
        .unwrap_or("DBLP,MATH,UBUNTU")
        .to_string();

    let mut med_table = TablePrinter::new(header(&args, seed, epochs));
    let mut avg_table = TablePrinter::new(header(&args, seed, epochs));

    for ds in dataset_list.split(',') {
        let ds = ds.trim();
        let (_, observed) = datasets::load(ds, scale, seed);
        eprintln!(
            "[{}] n={} m={} T={}",
            ds,
            observed.n_nodes(),
            observed.n_edges(),
            observed.n_timestamps()
        );
        let methods = filter_methods(all_methods(epochs, seed), args.get("methods"));
        // scores[metric][method] as strings
        let mut med_cells: Vec<Vec<String>> = vec![Vec::new(); 7];
        let mut avg_cells: Vec<Vec<String>> = vec![Vec::new(); 7];
        let mut names = Vec::new();
        for mut m in methods {
            let t0 = std::time::Instant::now();
            let outcome = run_method(m.as_mut(), &observed, seed, budget);
            names.push(outcome.method.clone());
            match &outcome.generated {
                Some(generated) => {
                    let scores = evaluate(&observed, generated);
                    for (i, s) in scores.iter().enumerate() {
                        med_cells[i].push(sci(s.med));
                        avg_cells[i].push(sci(s.avg));
                    }
                }
                None => {
                    for i in 0..7 {
                        med_cells[i].push("OOM".into());
                        avg_cells[i].push("OOM".into());
                    }
                }
            }
            eprintln!(
                "  {:<8} {:>8.2?} peak={}",
                outcome.method,
                t0.elapsed(),
                tg_bench::memtrack::fmt_bytes(outcome.peak_bytes)
            );
        }
        for (i, kind) in MetricKind::ALL.iter().enumerate() {
            let mut med_row = vec![ds.to_string(), kind.name().to_string()];
            med_row.extend(med_cells[i].clone());
            med_table.row(med_row);
            let mut avg_row = vec![ds.to_string(), kind.name().to_string()];
            avg_row.extend(avg_cells[i].clone());
            avg_table.row(avg_row);
        }
    }

    println!("\nTable IV — median score f_med (smaller is better)\n");
    println!("{}", med_table.render());
    println!("\nTable V — average score f_avg (smaller is better)\n");
    println!("{}", avg_table.render());
    write_results("table4_median.csv", &med_table.to_csv()).expect("write table4");
    write_results("table5_average.csv", &avg_table.to_csv()).expect("write table5");
    println!("wrote results/table4_median.csv, results/table5_average.csv");
}

fn header(args: &Args, seed: u64, epochs: usize) -> Vec<String> {
    let methods = filter_methods(all_methods(epochs, seed), args.get("methods"));
    let mut h = vec!["Dataset".to_string(), "Metric".to_string()];
    h.extend(methods.iter().map(|m| m.name().to_string()));
    h
}
