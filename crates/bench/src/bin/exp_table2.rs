//! Table II: statistics of the network datasets.
//!
//! Prints the paper's reference counts next to the generated synthetic
//! stand-in at the harness scale, so every later experiment's operating
//! point is explicit.
//!
//! Usage: `cargo run -p tg-bench --release --bin exp_table2 [--scale f] [--seed s]`

use tg_bench::datasets;
use tg_bench::runner::{write_results, Args, TablePrinter};

#[global_allocator]
static ALLOC: tg_bench::TrackingAllocator = tg_bench::TrackingAllocator;

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    let scale = args.get("scale").and_then(|s| s.parse::<f64>().ok());

    let mut table = TablePrinter::new(vec![
        "Network".into(),
        "#Nodes (paper)".into(),
        "#Edges (paper)".into(),
        "#Timestamps (paper)".into(),
        "#Nodes (run)".into(),
        "#Edges (run)".into(),
        "#Timestamps (run)".into(),
        "scale".into(),
    ]);
    for preset in tg_datasets::all_presets() {
        let (p, g) = datasets::load(preset.name, scale, seed);
        let (n, m, t) = p.paper_stats();
        let used_scale = scale.unwrap_or_else(|| datasets::default_scale(p.name));
        table.row(vec![
            p.name.to_string(),
            n.to_string(),
            m.to_string(),
            t.to_string(),
            g.n_nodes().to_string(),
            g.n_edges().to_string(),
            g.n_timestamps().to_string(),
            format!("{used_scale}"),
        ]);
    }
    println!("Table II — dataset statistics (paper vs this run)\n");
    println!("{}", table.render());
    write_results("table2.csv", &table.to_csv()).expect("write results/table2.csv");
    println!("wrote results/table2.csv");
}
