//! The experiment-grade method registry: TGAE (and variants) plus the ten
//! baselines, with configurations sized for the harness datasets.

use crate::runner::TgaeMethod;
use tg_baselines::{
    AeConfig, AeGenerator, BaGenerator, DymondGenerator, ErGenerator, NetGanConfig,
    NetGanGenerator, TagGenConfig, TagGenGenerator, TemporalGraphGenerator, TgganGenerator,
    TiggerConfig, TiggerGenerator,
};
use tgae::{TgaeConfig, TgaeVariant};

/// TGAE configuration used across the experiments (CLI can scale epochs).
pub fn tgae_config(epochs: usize, seed: u64) -> TgaeConfig {
    TgaeConfig {
        epochs,
        seed,
        ..Default::default()
    }
}

/// All eleven methods in the paper's column order:
/// TGAE, TIGGER, DYMOND, TGGAN, TagGen, NetGAN, E-R, B-A, VGAE, Graphite,
/// SBMGNN.
pub fn all_methods(epochs: usize, seed: u64) -> Vec<Box<dyn TemporalGraphGenerator>> {
    let mut v: Vec<Box<dyn TemporalGraphGenerator>> =
        vec![Box::new(TgaeMethod::new(tgae_config(epochs, seed)))];
    v.extend(baseline_methods(epochs, seed));
    v
}

/// The ten baselines with harness configurations.
pub fn baseline_methods(epochs: usize, seed: u64) -> Vec<Box<dyn TemporalGraphGenerator>> {
    vec![
        Box::new(TiggerGenerator::new(TiggerConfig {
            seed,
            ..Default::default()
        })),
        Box::new(DymondGenerator::default()),
        Box::new(TgganGenerator::new(TagGenConfig {
            seed,
            ..Default::default()
        })),
        Box::new(TagGenGenerator::new(TagGenConfig {
            seed,
            ..Default::default()
        })),
        Box::new(NetGanGenerator::new(NetGanConfig {
            epochs: epochs.min(80),
            seed,
            ..Default::default()
        })),
        Box::new(ErGenerator),
        Box::new(BaGenerator),
        Box::new(AeGenerator::vgae(AeConfig {
            epochs: epochs.min(80),
            seed,
            ..Default::default()
        })),
        Box::new(AeGenerator::graphite(AeConfig {
            epochs: epochs.min(80),
            seed,
            ..Default::default()
        })),
        Box::new(AeGenerator::sbmgnn(AeConfig {
            epochs: epochs.min(80),
            seed,
            ..Default::default()
        })),
    ]
}

/// The five TGAE ablation variants of Table VII.
pub fn ablation_methods(epochs: usize, seed: u64) -> Vec<Box<dyn TemporalGraphGenerator>> {
    TgaeVariant::ALL
        .iter()
        .map(|&v| {
            Box::new(TgaeMethod::new(tgae_config(epochs, seed).with_variant(v)))
                as Box<dyn TemporalGraphGenerator>
        })
        .collect()
}

/// Filter methods by a comma-separated name list (case-insensitive);
/// empty/None keeps everything.
pub fn filter_methods(
    methods: Vec<Box<dyn TemporalGraphGenerator>>,
    filter: Option<&str>,
) -> Vec<Box<dyn TemporalGraphGenerator>> {
    match filter {
        None | Some("") => methods,
        Some(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .collect();
            methods
                .into_iter()
                .filter(|m| wanted.iter().any(|w| w == &m.name().to_ascii_lowercase()))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_matches_paper_columns() {
        let names: Vec<&str> = all_methods(5, 1).iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "TGAE", "TIGGER", "DYMOND", "TGGAN", "TagGen", "NetGAN", "E-R", "B-A", "VGAE",
                "Graphite", "SBMGNN"
            ]
        );
    }

    #[test]
    fn ablations_are_the_five_variants() {
        let names: Vec<&str> = ablation_methods(5, 1).iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["TGAE", "TGAE-g", "TGAE-t", "TGAE-n", "TGAE-p"]);
    }

    #[test]
    fn filtering_works() {
        let kept = filter_methods(all_methods(5, 1), Some("tgae, e-r"));
        let names: Vec<&str> = kept.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["TGAE", "E-R"]);
        assert_eq!(filter_methods(all_methods(5, 1), None).len(), 11);
    }
}
