//! Peak-heap tracking via a counting global allocator.
//!
//! The paper's Fig. 6 reports GPU memory usage; this reproduction runs on
//! CPU, so the analogue is peak heap allocation. Experiment binaries
//! install [`TrackingAllocator`] as the global allocator and snapshot
//! [`peak_bytes`] around each method run. The "OOM" cells of Tables IV–VI
//! are reproduced by checking the tracked peak against a configurable
//! budget.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `System`-backed allocator that tracks live and peak bytes.
pub struct TrackingAllocator;

// SAFETY: delegates to `System` verbatim; only the counters are extra.
unsafe impl GlobalAlloc for TrackingAllocator {
    // SAFETY: forwards `layout` unchanged to `System.alloc`, inheriting
    // its contract; the counters never touch the returned memory.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: forwards `ptr`/`layout` unchanged to `System.dealloc`;
    // the caller's GlobalAlloc contract is exactly what we require.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: forwards all arguments unchanged to `System.realloc`;
    // only the byte accounting differs from the system allocator.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                    + (new_size - layout.size());
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak to the current live size (call before a measured run).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Pretty-print a byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the tracking allocator is only *installed* in the experiment
    // binaries; in unit tests these counters sit at zero unless installed,
    // so we only test the pure helpers here.
    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00 GiB");
    }

    #[test]
    fn counters_are_monotone_api() {
        reset_peak();
        assert!(peak_bytes() >= current_bytes() || peak_bytes() == 0);
    }
}
