//! Experiment dataset selection: Table II presets at harness scales.
//!
//! The paper runs on a V100 with 32 GB of HBM; this harness runs the same
//! operating points shrunk by a per-dataset default scale so the full
//! experiment grid finishes on a laptop CPU. Every binary accepts
//! `--scale <f>` to override (1.0 = the paper's full Table II sizes).

use tg_datasets::{by_name, Preset};
use tg_graph::TemporalGraph;

/// Default harness scale for each Table II dataset (chosen so the slowest
/// baseline finishes in seconds at default settings).
pub fn default_scale(name: &str) -> f64 {
    match name.to_ascii_uppercase().as_str() {
        "DBLP" => 0.5,
        "EMAIL" => 0.05,
        "MSG" => 0.15,
        "BITCOIN-A" => 0.08,
        "BITCOIN-O" => 0.05,
        "MATH" => 0.01,
        "UBUNTU" => 0.004,
        _ => 0.1,
    }
}

/// Timestamp cap applied after scaling: long time axes (Bitcoin's ~1900
/// timestamps) are bucketed down so per-snapshot statistics stay
/// meaningful at reduced edge counts.
pub fn timestamp_cap(name: &str) -> usize {
    match name.to_ascii_uppercase().as_str() {
        "EMAIL" => 50,
        "BITCOIN-A" | "BITCOIN-O" => 60,
        _ => 100,
    }
}

/// Generate a named dataset at the given (or default) scale.
pub fn load(name: &str, scale: Option<f64>, seed: u64) -> (Preset, TemporalGraph) {
    let preset = by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let scale = scale.unwrap_or_else(|| default_scale(name));
    let mut cfg = preset.config.scaled(scale);
    cfg.timestamps = cfg.timestamps.min(timestamp_cap(name));
    let g = tg_datasets::generate(&cfg, &mut seeded(seed));
    (preset, g)
}

fn seeded(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_scales_and_caps() {
        let (preset, g) = load("BITCOIN-A", Some(0.05), 7);
        assert_eq!(preset.name, "BITCOIN-A");
        assert!(g.n_nodes() < 400);
        assert!(g.n_timestamps() <= 60);
    }

    #[test]
    fn default_scales_cover_all_presets() {
        for p in tg_datasets::all_presets() {
            assert!(default_scale(p.name) > 0.0);
            let (_, g) = load(p.name, None, 1);
            assert!(g.n_edges() > 0, "{} generated empty", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        load("NOPE", None, 1);
    }
}
