//! Shared experiment runner: executes one generator on one dataset under
//! wall-clock and peak-memory measurement, with a memory budget that
//! reproduces the paper's OOM cells.

use crate::memtrack;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use tg_baselines::TemporalGraphGenerator;
use tg_graph::sink::GraphSink;
use tg_graph::TemporalGraph;
use tgae::{Session, TgaeConfig};

/// TGAE wrapped as a [`TemporalGraphGenerator`] so the harness treats it
/// uniformly with the baselines. Internally drives a [`Session`];
/// training derives from `cfg.seed` and the simulation master seed is the
/// one `u64` drawn from the harness RNG — exactly the PR-3 free-function
/// behaviour, so recorded experiment outputs are unchanged.
pub struct TgaeMethod {
    pub cfg: TgaeConfig,
    name: &'static str,
}

impl TgaeMethod {
    pub fn new(cfg: TgaeConfig) -> Self {
        TgaeMethod {
            name: cfg.variant.name(),
            cfg,
        }
    }
}

impl TemporalGraphGenerator for TgaeMethod {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit_generate(
        &mut self,
        observed: &TemporalGraph,
        rng: &mut dyn rand::RngCore,
    ) -> TemporalGraph {
        let mut session = Session::builder(observed)
            .config(self.cfg.clone())
            .build()
            .expect("benchmark graph/config must be valid");
        session.train().expect("training failed");
        let master = rng.next_u64();
        session
            .simulate_seeded(
                master,
                GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
            )
            .expect("simulation failed")
    }
}

/// Outcome of running one method on one dataset.
pub struct RunOutcome {
    pub method: String,
    pub wall: Duration,
    pub peak_bytes: usize,
    /// `None` = exceeded the memory budget (reported as OOM).
    pub generated: Option<TemporalGraph>,
}

impl RunOutcome {
    pub fn is_oom(&self) -> bool {
        self.generated.is_none()
    }
}

/// Run `method` on `observed` with a fresh seeded RNG; if the tracked peak
/// heap exceeds `mem_budget_bytes` the result is discarded and marked OOM
/// (the paper's out-of-memory cells).
pub fn run_method(
    method: &mut dyn TemporalGraphGenerator,
    observed: &TemporalGraph,
    seed: u64,
    mem_budget_bytes: usize,
) -> RunOutcome {
    let mut rng = SmallRng::seed_from_u64(seed);
    memtrack::reset_peak();
    let start = Instant::now();
    let generated = method.fit_generate(observed, &mut rng);
    let wall = start.elapsed();
    let peak = memtrack::peak_bytes();
    let over_budget = peak > mem_budget_bytes;
    RunOutcome {
        method: method.name().to_string(),
        wall,
        peak_bytes: peak,
        generated: if over_budget { None } else { Some(generated) },
    }
}

/// Format a score the way the paper prints table cells, e.g. `2.41E-3`.
pub fn sci(x: f64) -> String {
    if !x.is_finite() {
        return "inf".to_string();
    }
    if x == 0.0 {
        return "0.00E+0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    let mant = x / 10f64.powi(exp);
    format!("{mant:.2}E{exp:+}")
}

/// Simple fixed-width markdown-ish table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    pub fn new(headers: Vec<String>) -> Self {
        TablePrinter {
            headers,
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {:<w$} |", c, w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        let _ = ncols;
        out
    }

    /// Emit CSV with the same content.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Write a result artifact under `results/`.
pub fn write_results(name: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    std::fs::write(format!("results/{name}"), content)
}

/// Tiny CLI parser: `--key value` pairs.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            if let Some(key) = argv[i].strip_prefix("--") {
                let val = argv.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), val));
                i += 2;
            } else {
                i += 1;
            }
        }
        Args { pairs }
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_baselines::ErGenerator;
    use tg_graph::TemporalEdge;

    fn toy() -> TemporalGraph {
        let edges: Vec<TemporalEdge> = (0..20)
            .map(|i| TemporalEdge::new(i % 5, (i + 1) % 5, i % 4))
            .collect();
        TemporalGraph::from_edges(5, 4, edges)
    }

    #[test]
    fn run_method_produces_outcome() {
        let g = toy();
        let mut er = ErGenerator;
        let out = run_method(&mut er, &g, 1, usize::MAX);
        assert_eq!(out.method, "E-R");
        assert!(!out.is_oom());
        assert_eq!(out.generated.unwrap().n_edges(), g.n_edges());
    }

    #[test]
    fn zero_budget_forces_oom() {
        let g = toy();
        let mut er = ErGenerator;
        let out = run_method(&mut er, &g, 1, 0);
        // with the tracking allocator not installed in tests peak may be 0;
        // either way the API contract holds
        if out.peak_bytes > 0 {
            assert!(out.is_oom());
        }
    }

    #[test]
    fn sci_formatting_matches_paper_style() {
        assert_eq!(sci(2.41e-3), "2.41E-3");
        assert_eq!(sci(1.08), "1.08E+0");
        assert_eq!(sci(23.2), "2.32E+1");
        assert_eq!(sci(0.0), "0.00E+0");
    }

    #[test]
    fn table_printer_renders_and_csvs() {
        let mut t = TablePrinter::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains("| a | b |"));
        assert!(rendered.contains("| 1 | 2 |"));
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn tgae_method_wraps_model() {
        let g = toy();
        let mut cfg = TgaeConfig::tiny();
        cfg.epochs = 3;
        let mut m = TgaeMethod::new(cfg);
        assert_eq!(m.name(), "TGAE");
        let out = run_method(&mut m, &g, 2, usize::MAX);
        assert!(!out.is_oom());
        let gen = out.generated.unwrap();
        assert_eq!(gen.n_nodes(), 5);
    }
}
