//! Static graph snapshots in CSR form.
//!
//! The paper's evaluation (Eq. 10) compares *accumulated* snapshots: the
//! static graph containing every edge with timestamp `<= t`. [`Snapshot`]
//! is that static graph — a directed CSR with both out- and in-adjacency,
//! plus the undirected simple-graph views the Table III statistics are
//! computed on.

use crate::temporal::{NodeId, TemporalGraph, Time};
use serde::{Deserialize, Serialize};

/// A static directed graph in CSR form.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    n: usize,
    /// CSR out-adjacency.
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    /// CSR in-adjacency.
    in_offsets: Vec<usize>,
    in_targets: Vec<NodeId>,
    /// Number of (directed) edges stored.
    m: usize,
}

impl Snapshot {
    /// Build from `(u, v)` pairs. When `dedup` is set, parallel edges are
    /// collapsed (self-loops are kept as provided either way).
    pub fn from_pairs(n: usize, pairs: &[(NodeId, NodeId)], dedup: bool) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = pairs.to_vec();
        edges.sort_unstable();
        if dedup {
            edges.dedup();
        }
        let m = edges.len();
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();

        let mut rev: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v)| (v, u)).collect();
        rev.sort_unstable();
        let mut in_offsets = vec![0usize; n + 1];
        for &(v, _) in &rev {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let in_targets: Vec<NodeId> = rev.iter().map(|&(_, u)| u).collect();

        Snapshot {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            m,
        }
    }

    /// The snapshot of a temporal graph accumulated through timestamp `t`
    /// (edges with timestamp `<= t`), deduplicated to a simple digraph —
    /// this is the object the paper's metrics are evaluated on.
    pub fn accumulated(g: &TemporalGraph, t: Time, dedup: bool) -> Self {
        let pairs: Vec<(NodeId, NodeId)> = g.edges_until(t).iter().map(|e| (e.u, e.v)).collect();
        Snapshot::from_pairs(g.n_nodes(), &pairs, dedup)
    }

    /// The snapshot at exactly timestamp `t`.
    pub fn at_time(g: &TemporalGraph, t: Time, dedup: bool) -> Self {
        let pairs: Vec<(NodeId, NodeId)> = g.edges_at(t).iter().map(|e| (e.u, e.v)).collect();
        Snapshot::from_pairs(g.n_nodes(), &pairs, dedup)
    }

    /// Number of nodes (fixed across all snapshots of a temporal graph).
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Directed edge count (after any dedup at construction).
    pub fn n_edges(&self) -> usize {
        self.m
    }

    /// Out-neighbors of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[u as usize]..self.out_offsets[u as usize + 1]]
    }

    /// In-neighbors of `v`.
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.in_targets[self.in_offsets[v as usize]..self.in_offsets[v as usize + 1]]
    }

    /// Out-degree of `u` (after any dedup at construction).
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `v` (after any dedup at construction).
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total (in+out) degree per node.
    pub fn total_degrees(&self) -> Vec<usize> {
        (0..self.n as NodeId)
            .map(|v| self.out_degree(v) + self.in_degree(v))
            .collect()
    }

    /// Undirected simple adjacency: for each node, the sorted deduplicated
    /// union of in- and out-neighbors with self-loops removed. This is the
    /// view Table III statistics (wedge/claw/triangle counts, LCC, PLE) are
    /// computed on.
    pub fn undirected_adjacency(&self) -> Vec<Vec<NodeId>> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.n];
        for u in 0..self.n as NodeId {
            for &v in self.out_neighbors(u) {
                if v != u {
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// All directed edges as pairs.
    pub fn edge_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.m);
        for u in 0..self.n as NodeId {
            for &v in self.out_neighbors(u) {
                out.push((u, v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::TemporalEdge;

    fn toy_temporal() -> TemporalGraph {
        TemporalGraph::from_edges(
            4,
            2,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(0, 1, 1), // duplicate of t=0 edge (different time)
                TemporalEdge::new(2, 3, 1),
            ],
        )
    }

    #[test]
    fn from_pairs_csr_roundtrip() {
        let s = Snapshot::from_pairs(3, &[(0, 1), (0, 2), (2, 1)], false);
        assert_eq!(s.n_edges(), 3);
        assert_eq!(s.out_neighbors(0), &[1, 2]);
        assert_eq!(s.out_neighbors(1), &[] as &[NodeId]);
        assert_eq!(s.in_neighbors(1), &[0, 2]);
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.in_degree(2), 1);
    }

    #[test]
    fn dedup_collapses_parallel_edges() {
        let s = Snapshot::from_pairs(2, &[(0, 1), (0, 1), (0, 1)], true);
        assert_eq!(s.n_edges(), 1);
        let s2 = Snapshot::from_pairs(2, &[(0, 1), (0, 1)], false);
        assert_eq!(s2.n_edges(), 2);
    }

    #[test]
    fn accumulated_includes_prior_timestamps() {
        let g = toy_temporal();
        let s0 = Snapshot::accumulated(&g, 0, true);
        assert_eq!(s0.n_edges(), 2);
        let s1 = Snapshot::accumulated(&g, 1, true);
        // (0,1) at t=0 and t=1 dedups to one edge
        assert_eq!(s1.n_edges(), 3);
        let s1_multi = Snapshot::accumulated(&g, 1, false);
        assert_eq!(s1_multi.n_edges(), 4);
    }

    #[test]
    fn at_time_is_exact() {
        let g = toy_temporal();
        let s = Snapshot::at_time(&g, 1, true);
        assert_eq!(s.n_edges(), 2);
        assert_eq!(s.out_neighbors(2), &[3]);
    }

    #[test]
    fn undirected_adjacency_symmetric_simple() {
        let s = Snapshot::from_pairs(3, &[(0, 1), (1, 0), (1, 1), (2, 1)], false);
        let adj = s.undirected_adjacency();
        assert_eq!(adj[0], vec![1]); // (0,1)+(1,0) collapse; self-loop (1,1) dropped
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
        // symmetry
        for u in 0..3u32 {
            for &v in &adj[u as usize] {
                assert!(adj[v as usize].contains(&u));
            }
        }
    }

    #[test]
    fn edge_pairs_roundtrip() {
        let pairs = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let s = Snapshot::from_pairs(3, &pairs, true);
        let mut back = s.edge_pairs();
        back.sort_unstable();
        assert_eq!(back, pairs);
    }

    #[test]
    fn total_degrees() {
        let s = Snapshot::from_pairs(3, &[(0, 1), (1, 2)], true);
        assert_eq!(s.total_degrees(), vec![1, 2, 1]);
    }
}
