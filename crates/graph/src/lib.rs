#![warn(missing_docs)]
//! `tg-graph`: temporal-graph storage for the TGAE reproduction.
//!
//! A temporal graph (paper §III, Def. 2) is a series of snapshots
//! `{G_1, ..., G_T}` over a fixed node set; every edge carries a dense
//! timestamp. This crate provides:
//!
//! - [`temporal::TemporalGraph`] — the immutable edge store with
//!   per-timestamp slicing, temporal neighborhoods (Def. 3 with `d_N = 1`)
//!   and temporal degrees (the Eq. 2 sampling weights);
//! - [`snapshot::Snapshot`] — accumulated/exact static CSR snapshots, the
//!   objects the paper's evaluation metrics are computed on;
//! - [`builder::TemporalGraphBuilder`] — relabeling/compaction from raw
//!   ids and epoch timestamps;
//! - [`io`] — the `src dst timestamp` text interchange format used by the
//!   paper's datasets (SNAP/Bitcoin/StackExchange dumps drop in directly),
//!   plus the streaming writer/merger behind sharded generation;
//! - [`sink`] — the [`sink::EdgeSink`] abstraction consumed by the
//!   simulation engine (`tgae::engine`): in-memory graph assembly,
//!   streaming edge-list writing, or online statistics with no edge
//!   storage;
//! - [`source`] — the mirror-image [`source::EdgeSource`] abstraction
//!   produced by ingest: observed edges as per-timestamp chunk streams
//!   (in-memory via [`source::InMemorySource`], out-of-core via
//!   `tg-store`'s `StoreSource`), plus the streaming
//!   [`source::GraphAssembler`] that rebuilds a graph from them with
//!   `O(chunk)` overhead.

pub mod builder;
pub mod io;
pub mod sink;
pub mod snapshot;
pub mod source;
pub mod temporal;
pub mod transform;

pub use builder::TemporalGraphBuilder;
pub use sink::{EdgeSink, GenerationStats, GraphSink, StatsSink};
pub use snapshot::Snapshot;
pub use source::{EdgeSource, GraphAssembler, InMemorySource};
pub use temporal::{NodeId, TemporalEdge, TemporalGraph, Time};
