//! Incremental construction of temporal graphs from raw (sparse) ids.
//!
//! Real dumps use arbitrary node ids and epoch timestamps; models need
//! dense `0..n` node ids and `0..T` timestamps. The builder relabels nodes
//! in first-seen order and compacts (or buckets) timestamps.

use crate::temporal::{NodeId, TemporalEdge, TemporalGraph, Time};
use std::collections::HashMap;

/// Accumulates raw edges, then compacts them into a [`TemporalGraph`].
#[derive(Default)]
pub struct TemporalGraphBuilder {
    // lint: allow(determinism) — keyed lookups only; node ids are
    // assigned in first-seen insertion order, never by iteration
    node_map: HashMap<u64, NodeId>,
    raw: Vec<(NodeId, NodeId, u64)>,
}

impl TemporalGraphBuilder {
    /// An empty builder (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an edge with raw (uncompacted) ids and timestamp.
    pub fn add_raw(&mut self, u: u64, v: u64, t: u64) {
        let ui = self.intern(u);
        let vi = self.intern(v);
        self.raw.push((ui, vi, t));
    }

    /// Add an edge already carrying dense node ids (still raw timestamp).
    pub fn add_dense(&mut self, u: NodeId, v: NodeId, t: u64) {
        self.add_raw(u as u64, v as u64, t);
    }

    fn intern(&mut self, raw: u64) -> NodeId {
        let next = self.node_map.len() as NodeId;
        *self.node_map.entry(raw).or_insert(next)
    }

    /// Whether no edges have been added yet.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Number of edges accumulated so far.
    pub fn n_edges(&self) -> usize {
        self.raw.len()
    }

    /// Number of distinct nodes seen so far.
    pub fn n_nodes(&self) -> usize {
        self.node_map.len()
    }

    /// Build, compacting each distinct raw timestamp to its rank.
    pub fn build(self) -> TemporalGraph {
        let mut times: Vec<u64> = self.raw.iter().map(|&(_, _, t)| t).collect();
        times.sort_unstable();
        times.dedup();
        // lint: allow(determinism) — built from the sorted/deduped
        // `times` and read by key only, never iterated
        let time_map: HashMap<u64, Time> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as Time))
            .collect();
        let n = self.node_map.len();
        let t_count = times.len().max(1);
        let edges = self
            .raw
            .into_iter()
            .map(|(u, v, t)| TemporalEdge::new(u, v, time_map[&t]))
            .collect();
        TemporalGraph::from_edges(n, t_count, edges)
    }

    /// Build, quantising raw timestamps into `buckets` equal-width bins
    /// over `[min_t, max_t]` — the paper's snapshot aggregation.
    pub fn build_bucketed(self, buckets: usize) -> TemporalGraph {
        assert!(buckets > 0);
        let min_t = self.raw.iter().map(|&(_, _, t)| t).min().unwrap_or(0);
        let max_t = self.raw.iter().map(|&(_, _, t)| t).max().unwrap_or(0);
        let span = (max_t - min_t).max(1) as f64;
        let n = self.node_map.len();
        let edges = self
            .raw
            .into_iter()
            .map(|(u, v, t)| {
                let frac = (t - min_t) as f64 / span;
                let b = ((frac * buckets as f64) as usize).min(buckets - 1);
                TemporalEdge::new(u, v, b as Time)
            })
            .collect();
        TemporalGraph::from_edges(n, buckets, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_first_seen_order() {
        let mut b = TemporalGraphBuilder::new();
        b.add_raw(100, 7, 0);
        b.add_raw(7, 55, 1);
        let g = b.build();
        assert_eq!(g.n_nodes(), 3);
        // 100 -> 0, 7 -> 1, 55 -> 2
        assert_eq!(g.edges()[0], TemporalEdge::new(0, 1, 0));
        assert_eq!(g.edges()[1], TemporalEdge::new(1, 2, 1));
    }

    #[test]
    fn timestamp_compaction_is_rank_order() {
        let mut b = TemporalGraphBuilder::new();
        b.add_raw(0, 1, 1_000_000);
        b.add_raw(1, 0, 5);
        b.add_raw(0, 1, 99);
        let g = b.build();
        assert_eq!(g.n_timestamps(), 3);
        assert_eq!(g.edges_at(0)[0], TemporalEdge::new(1, 0, 0)); // raw 5
        assert_eq!(g.edges_at(2)[0], TemporalEdge::new(0, 1, 2)); // raw 1e6
    }

    #[test]
    fn bucketed_build_respects_bucket_count() {
        let mut b = TemporalGraphBuilder::new();
        for t in 0..100u64 {
            b.add_raw(t % 5, (t + 1) % 5, t);
        }
        let g = b.build_bucketed(10);
        assert_eq!(g.n_timestamps(), 10);
        assert_eq!(g.n_edges(), 100);
        // roughly uniform
        for t in 0..10 {
            let c = g.edges_at(t).len();
            assert!((8..=12).contains(&c), "bucket {t} has {c}");
        }
    }

    #[test]
    fn bucketed_single_timestamp_graph() {
        let mut b = TemporalGraphBuilder::new();
        b.add_raw(0, 1, 42);
        b.add_raw(1, 2, 42);
        let g = b.build_bucketed(4);
        assert_eq!(g.n_timestamps(), 4);
        assert_eq!(g.edges_at(0).len(), 2);
    }

    #[test]
    fn counters() {
        let mut b = TemporalGraphBuilder::new();
        assert!(b.is_empty());
        b.add_dense(0, 1, 3);
        assert_eq!(b.n_edges(), 1);
        assert_eq!(b.n_nodes(), 2);
    }
}
