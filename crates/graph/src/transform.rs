//! Temporal graph transformations: sub-graph extraction, time slicing,
//! relabeling, and direction reversal. These are the "data-wrangling"
//! operations a downstream user needs to carve experiment inputs out of a
//! bigger corpus (and what the harness uses to build per-chunk views).

use crate::temporal::{NodeId, TemporalEdge, TemporalGraph, Time};
use std::collections::HashMap;

/// Induced temporal subgraph on a node subset: keeps edges whose both
/// endpoints are in `nodes`, relabeling node ids densely in the order
/// given. Timestamp axis is preserved.
pub fn induced_subgraph(g: &TemporalGraph, nodes: &[NodeId]) -> TemporalGraph {
    // lint: allow(determinism) — keyed lookups only; the relabelling is
    // fixed by the caller's `nodes` order, never by iteration
    let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        assert!((v as usize) < g.n_nodes(), "node {v} out of range");
        map.entry(v).or_insert(i as NodeId);
    }
    let edges: Vec<TemporalEdge> = g
        .edges()
        .iter()
        .filter_map(|e| {
            let u = map.get(&e.u)?;
            let v = map.get(&e.v)?;
            Some(TemporalEdge::new(*u, *v, e.t))
        })
        .collect();
    TemporalGraph::from_edges(map.len().max(1), g.n_timestamps(), edges)
}

/// Restrict to a timestamp window `[lo, hi)`, re-basing timestamps to
/// start at zero. Node set is preserved.
pub fn time_slice(g: &TemporalGraph, lo: Time, hi: Time) -> TemporalGraph {
    assert!(lo < hi, "empty window");
    let hi = (hi as usize).min(g.n_timestamps()) as Time;
    assert!(lo < hi, "window beyond time axis");
    let edges: Vec<TemporalEdge> = g
        .edges()
        .iter()
        .filter(|e| e.t >= lo && e.t < hi)
        .map(|e| TemporalEdge::new(e.u, e.v, e.t - lo))
        .collect();
    TemporalGraph::from_edges(g.n_nodes(), (hi - lo) as usize, edges)
}

/// Reverse every edge direction (in-degree <-> out-degree views).
pub fn reverse(g: &TemporalGraph) -> TemporalGraph {
    let edges: Vec<TemporalEdge> = g
        .edges()
        .iter()
        .map(|e| TemporalEdge::new(e.v, e.u, e.t))
        .collect();
    TemporalGraph::from_edges(g.n_nodes(), g.n_timestamps(), edges)
}

/// Drop nodes that never occur (degree 0 across all timestamps),
/// relabeling the remainder densely. Returns the compacted graph and the
/// old-id list (new id -> old id).
pub fn compact_nodes(g: &TemporalGraph) -> (TemporalGraph, Vec<NodeId>) {
    let deg = g.static_degrees();
    let keep: Vec<NodeId> = (0..g.n_nodes() as NodeId)
        .filter(|&v| deg[v as usize] > 0)
        .collect();
    let sub = induced_subgraph(g, &keep);
    (sub, keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TemporalGraph {
        TemporalGraph::from_edges(
            5,
            4,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 1),
                TemporalEdge::new(2, 3, 2),
                TemporalEdge::new(3, 0, 3),
            ],
        )
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = toy();
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.n_edges(), 2); // 0->1 and 1->2 survive
        assert_eq!(sub.n_timestamps(), 4);
        assert_eq!(sub.edges()[0], TemporalEdge::new(0, 1, 0));
        assert_eq!(sub.edges()[1], TemporalEdge::new(1, 2, 1));
    }

    #[test]
    fn induced_subgraph_relabels_in_given_order() {
        let g = toy();
        let sub = induced_subgraph(&g, &[2, 1]);
        // 2 -> 0, 1 -> 1; edge 1->2 becomes 1->0
        assert_eq!(sub.edges()[0], TemporalEdge::new(1, 0, 1));
    }

    #[test]
    fn time_slice_rebases() {
        let g = toy();
        let s = time_slice(&g, 1, 3);
        assert_eq!(s.n_timestamps(), 2);
        assert_eq!(s.n_edges(), 2);
        assert_eq!(s.edges()[0], TemporalEdge::new(1, 2, 0));
        assert_eq!(s.edges()[1], TemporalEdge::new(2, 3, 1));
    }

    #[test]
    fn time_slice_clamps_to_axis() {
        let g = toy();
        let s = time_slice(&g, 2, 100);
        assert_eq!(s.n_timestamps(), 2);
        assert_eq!(s.n_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn time_slice_rejects_empty() {
        time_slice(&toy(), 2, 2);
    }

    #[test]
    fn reverse_swaps_directions() {
        let g = toy();
        let r = reverse(&g);
        assert_eq!(r.out_neighbors_at(1, 0).collect::<Vec<_>>(), vec![0]);
        // in the reversal, node 1 no longer has any in-edges at t=0
        assert_eq!(r.in_neighbors_at(1, 0).count(), 0);
        assert_eq!(r.in_neighbors_at(0, 0).collect::<Vec<_>>(), vec![1]);
        // double reversal is identity
        let rr = reverse(&r);
        assert_eq!(rr.edges(), g.edges());
    }

    #[test]
    fn compact_drops_isolated() {
        let g = TemporalGraph::from_edges(
            6,
            2,
            vec![TemporalEdge::new(0, 3, 0), TemporalEdge::new(3, 5, 1)],
        );
        let (c, keep) = compact_nodes(&g);
        assert_eq!(c.n_nodes(), 3);
        assert_eq!(keep, vec![0, 3, 5]);
        assert_eq!(c.edges()[0], TemporalEdge::new(0, 1, 0));
        assert_eq!(c.edges()[1], TemporalEdge::new(1, 2, 1));
    }

    #[test]
    fn compact_on_fully_active_graph_is_identity_shaped() {
        let g = toy();
        let (c, keep) = compact_nodes(&g);
        assert_eq!(c.n_nodes(), 4); // node 4 was isolated
        assert_eq!(keep.len(), 4);
        assert_eq!(c.n_edges(), g.n_edges());
    }
}
