//! Edge sinks: where generated edges go.
//!
//! The simulation engine (`tgae::engine`) produces edges in a
//! deterministic stream of `(timestamp, chunk)` work units. Rather than
//! hard-coding "concatenate everything into one `Vec<TemporalEdge>` and
//! build a [`TemporalGraph`]", the engine emits each finished unit into an
//! [`EdgeSink`]. Three implementations cover the serving spectrum:
//!
//! - [`GraphSink`] — accumulate edges and build an in-memory
//!   [`TemporalGraph`] (the classic `generate()` behavior);
//! - [`crate::io::StreamingWriterSink`] — write edge-list text straight to
//!   any `io::Write`, so peak memory is bounded by the in-flight unit
//!   window rather than the total edge count;
//! - [`StatsSink`] — fold each unit into online per-timestamp
//!   degree/volume accumulators and store **no edges at all**, for
//!   monitoring pipelines that only need the summary statistics consumed
//!   by `tg-metrics`.
//!
//! # Contract
//!
//! The engine calls [`EdgeSink::accept`] once per work unit, **in plan
//! order** (timestamps ascending, chunks ascending within a timestamp),
//! regardless of how many worker threads executed the units. A sink may
//! therefore rely on the emission order being deterministic for a fixed
//! master seed; this is what makes `StreamingWriterSink` shard files
//! byte-concatenatable (see `tg-graph::io::merge_edge_lists`).

use crate::temporal::{NodeId, TemporalEdge, TemporalGraph, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Consumer of the deterministic generated-edge stream.
///
/// Implementations receive whole work units (already-sampled edge slices)
/// in plan order and produce an implementation-specific [`EdgeSink::Output`]
/// when the stream ends.
pub trait EdgeSink {
    /// What [`EdgeSink::finish`] yields (a graph, a write result, stats, …).
    type Output;

    /// Consume one finished work unit. `t` and `chunk` identify the unit;
    /// `edges` all carry timestamp `t`. Units arrive in plan order.
    fn accept(&mut self, t: Time, chunk: u32, edges: &[TemporalEdge]);

    /// Signal end of stream and convert the sink into its output.
    fn finish(self) -> Self::Output;
}

/// Accumulates every emitted edge and builds an in-memory
/// [`TemporalGraph`] — the original monolithic `generate()` behavior.
pub struct GraphSink {
    n_nodes: usize,
    n_timestamps: usize,
    edges: Vec<TemporalEdge>,
}

impl GraphSink {
    /// Sink for a graph with the given shape (usually the observed
    /// graph's `n_nodes()` / `n_timestamps()`).
    pub fn new(n_nodes: usize, n_timestamps: usize) -> Self {
        GraphSink {
            n_nodes,
            n_timestamps,
            edges: Vec::new(),
        }
    }

    /// Edges accepted so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }
}

impl EdgeSink for GraphSink {
    type Output = TemporalGraph;

    fn accept(&mut self, _t: Time, _chunk: u32, edges: &[TemporalEdge]) {
        self.edges.extend_from_slice(edges);
    }

    fn finish(self) -> TemporalGraph {
        TemporalGraph::from_edges(self.n_nodes, self.n_timestamps, self.edges)
    }
}

/// Per-timestamp accumulators of [`StatsSink`]: edge volume plus directed
/// degree tallies (with multiplicity), keyed by node. Only nodes that
/// actually appear are stored, so memory is `O(active temporal nodes)`
/// rather than `O(nT)` — and no edge is ever retained.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimestampStats {
    /// Temporal edges at this timestamp (volume).
    pub n_edges: u64,
    /// Out-degree (with multiplicity) per source node seen at this `t`.
    // lint: allow(determinism) — merged by exact integer entry-sums and
    // consumed via keyed lookups / order-free `.values()` folds
    pub out_degrees: HashMap<NodeId, u64>,
    /// In-degree (with multiplicity) per target node seen at this `t`.
    // lint: allow(determinism) — same as `out_degrees`: integer merges
    // and order-free folds only
    pub in_degrees: HashMap<NodeId, u64>,
}

impl TimestampStats {
    /// Fold another accumulator over the same timestamp into this one
    /// (degree tallies add; volume adds).
    pub fn merge(&mut self, other: &TimestampStats) {
        self.n_edges += other.n_edges;
        for (&node, &d) in &other.out_degrees {
            *self.out_degrees.entry(node).or_insert(0) += d;
        }
        for (&node, &d) in &other.in_degrees {
            *self.in_degrees.entry(node).or_insert(0) += d;
        }
    }

    /// Distinct sources active at this timestamp.
    pub fn n_sources(&self) -> usize {
        self.out_degrees.len()
    }

    /// Mean out-degree over active sources (0 for an empty snapshot).
    pub fn mean_out_degree(&self) -> f64 {
        if self.out_degrees.is_empty() {
            0.0
        } else {
            self.n_edges as f64 / self.out_degrees.len() as f64
        }
    }
}

/// Summary produced by [`StatsSink::finish`]: one [`TimestampStats`] per
/// timestamp plus whole-run totals. `Default` is the empty (zero
/// timestamps) summary — the identity of [`GenerationStats::merge`], so
/// shard statistics fold into `GenerationStats::default()`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// One accumulator per timestamp `0..T`.
    pub per_timestamp: Vec<TimestampStats>,
}

impl GenerationStats {
    /// Fold another run's (or shard's) statistics into this one,
    /// timestamp by timestamp. If `other` covers more timestamps, the
    /// horizon grows to match — so shard stats merge cleanly regardless
    /// of which shard finished first.
    ///
    /// Because every [`TimestampStats`] field is a sum, merging the
    /// per-shard outputs of a sharded generation run (in any order)
    /// yields exactly the statistics of the equivalent single-process
    /// run. This is the merge the engine determinism tests previously
    /// re-implemented inline, promoted to the public API for the
    /// `tgx-cli merge --stats` subcommand.
    pub fn merge(&mut self, other: &GenerationStats) {
        if other.per_timestamp.len() > self.per_timestamp.len() {
            self.per_timestamp
                .resize_with(other.per_timestamp.len(), TimestampStats::default);
        }
        for (mine, theirs) in self.per_timestamp.iter_mut().zip(&other.per_timestamp) {
            mine.merge(theirs);
        }
    }

    /// Total generated edges across all timestamps.
    pub fn n_edges(&self) -> u64 {
        self.per_timestamp.iter().map(|s| s.n_edges).sum()
    }

    /// Edge count per timestamp — comparable to
    /// [`TemporalGraph::edge_counts_per_timestamp`].
    pub fn edge_counts(&self) -> Vec<usize> {
        self.per_timestamp
            .iter()
            .map(|s| s.n_edges as usize)
            .collect()
    }

    /// Normalised out-degree histogram (with multiplicity) at timestamp
    /// `t`, truncated to `max_degree + 1` buckets with the last bucket
    /// absorbing the tail — the vector shape `tg-metrics` kernels
    /// (`mmd2_tv`, `tv_distance`) consume directly.
    pub fn out_degree_histogram(&self, t: Time, max_degree: usize) -> Vec<f64> {
        let mut hist = vec![0f64; max_degree + 1];
        for &d in self.per_timestamp[t as usize].out_degrees.values() {
            hist[(d as usize).min(max_degree)] += 1.0;
        }
        let total: f64 = hist.iter().sum();
        if total > 0.0 {
            for h in hist.iter_mut() {
                *h /= total;
            }
        }
        hist
    }

    /// Directed degree tallies recomputed from an in-memory graph, for
    /// cross-checking a streaming run against a [`GraphSink`] one. Returns
    /// the same structure a `StatsSink` over the identical edge stream
    /// would produce.
    pub fn from_graph(g: &TemporalGraph) -> GenerationStats {
        let mut sink = StatsSink::new(g.n_timestamps());
        sink.accept_all(g.edges());
        sink.finish()
    }
}

/// Online per-timestamp degree/volume accumulation with **no edge
/// storage**: each accepted unit is folded into [`TimestampStats`]
/// counters and dropped. Peak memory is independent of the number of
/// generated edges.
pub struct StatsSink {
    per_timestamp: Vec<TimestampStats>,
}

impl StatsSink {
    /// Sink covering timestamps `0..n_timestamps`.
    pub fn new(n_timestamps: usize) -> Self {
        StatsSink {
            per_timestamp: vec![TimestampStats::default(); n_timestamps],
        }
    }

    /// Fold a plain edge slice (possibly spanning timestamps) into the
    /// accumulators; used by [`GenerationStats::from_graph`].
    pub fn accept_all(&mut self, edges: &[TemporalEdge]) {
        for e in edges {
            let s = &mut self.per_timestamp[e.t as usize];
            s.n_edges += 1;
            *s.out_degrees.entry(e.u).or_insert(0) += 1;
            *s.in_degrees.entry(e.v).or_insert(0) += 1;
        }
    }
}

impl EdgeSink for StatsSink {
    type Output = GenerationStats;

    fn accept(&mut self, _t: Time, _chunk: u32, edges: &[TemporalEdge]) {
        self.accept_all(edges);
    }

    fn finish(self) -> GenerationStats {
        GenerationStats {
            per_timestamp: self.per_timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(sink: &mut impl EdgeSink, edges: &[TemporalEdge]) {
        // group by (t) preserving order, one accept per timestamp
        for (i, e) in edges.iter().enumerate() {
            sink.accept(e.t, i as u32, std::slice::from_ref(e));
        }
    }

    #[test]
    fn graph_sink_reproduces_from_edges() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(1, 2, 0),
            TemporalEdge::new(2, 0, 1),
        ];
        let mut sink = GraphSink::new(3, 2);
        emit(&mut sink, &edges);
        assert_eq!(sink.n_edges(), 3);
        let g = sink.finish();
        assert_eq!(g.edges(), TemporalGraph::from_edges(3, 2, edges).edges());
    }

    #[test]
    fn stats_sink_counts_degrees_and_volume() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 1, 0), // multiplicity kept
            TemporalEdge::new(1, 0, 1),
        ];
        let mut sink = StatsSink::new(2);
        emit(&mut sink, &edges);
        let stats = sink.finish();
        assert_eq!(stats.n_edges(), 3);
        assert_eq!(stats.edge_counts(), vec![2, 1]);
        assert_eq!(stats.per_timestamp[0].out_degrees[&0], 2);
        assert_eq!(stats.per_timestamp[0].in_degrees[&1], 2);
        assert_eq!(stats.per_timestamp[0].n_sources(), 1);
        assert!((stats.per_timestamp[0].mean_out_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_from_graph_matches_streaming() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(2, 1, 0),
            TemporalEdge::new(1, 2, 1),
            TemporalEdge::new(1, 2, 1),
        ];
        let g = TemporalGraph::from_edges(3, 2, edges.clone());
        let mut sink = StatsSink::new(2);
        emit(&mut sink, &edges);
        assert_eq!(sink.finish(), GenerationStats::from_graph(&g));
    }

    #[test]
    fn merge_equals_stats_over_union() {
        let edges_a = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(1, 2, 1),
        ];
        let edges_b = vec![TemporalEdge::new(2, 0, 1), TemporalEdge::new(0, 2, 2)];
        let stats_of = |edges: &[TemporalEdge], t_count: usize| {
            let mut sink = StatsSink::new(t_count);
            sink.accept_all(edges);
            sink.finish()
        };
        let mut merged = stats_of(&edges_a, 2);
        // other side covers one more timestamp: merge must grow
        merged.merge(&stats_of(&edges_b, 3));
        let mut union = edges_a.clone();
        union.extend_from_slice(&edges_b);
        assert_eq!(merged, stats_of(&union, 3));
        // merging in the opposite order gives the same totals
        let mut reversed = stats_of(&edges_b, 3);
        reversed.merge(&stats_of(&edges_a, 2));
        assert_eq!(reversed, merged);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let edges = vec![TemporalEdge::new(0, 1, 0), TemporalEdge::new(1, 0, 1)];
        let mut sink = StatsSink::new(2);
        sink.accept_all(&edges);
        let mut stats = sink.finish();
        let before = stats.clone();
        stats.merge(&StatsSink::new(2).finish());
        assert_eq!(stats, before);
        let mut empty = StatsSink::new(0).finish();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn out_degree_histogram_is_normalised_with_tail_bucket() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(0, 2, 0),
            TemporalEdge::new(0, 3, 0),
            TemporalEdge::new(1, 0, 0),
        ];
        let mut sink = StatsSink::new(1);
        sink.accept_all(&edges);
        let stats = sink.finish();
        // degrees: node 0 -> 3, node 1 -> 1; max_degree 2 puts 3 in tail
        let h = stats.out_degree_histogram(0, 2);
        assert_eq!(h.len(), 3);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h[1] - 0.5).abs() < 1e-12);
        assert!((h[2] - 0.5).abs() < 1e-12);
    }
}
