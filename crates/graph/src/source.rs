//! Edge sources: where observed edges come from.
//!
//! The mirror image of [`crate::sink::EdgeSink`]. The simulation engine
//! *emits* its deterministic edge stream into a sink one `(timestamp,
//! chunk)` unit at a time; an [`EdgeSource`] *produces* an observed graph
//! as the same kind of stream, so training-side ingest can consume
//! bounded per-timestamp chunks instead of requiring the whole edge list
//! to be staged in memory at once:
//!
//! ```text
//!   ingest (this module)                      serving (crate::sink)
//!   EdgeSource ──chunks──▶ GraphAssembler     engine ──units──▶ EdgeSink
//!   InMemorySource  (wraps TemporalGraph)     GraphSink
//!   tg-store StoreSource (streams from disk)  StreamingWriterSink
//!                                             StatsSink
//! ```
//!
//! Two implementations cover the spectrum: [`InMemorySource`] adapts an
//! existing [`TemporalGraph`] (so every consumer of the trait also works
//! on in-memory data, and the two paths can be regression-tested against
//! each other), and `tg-store`'s `StoreSource` streams timestamp-windowed
//! batches from the columnar on-disk edge store with `O(chunk)` resident
//! memory.
//!
//! # Chunk contract
//!
//! [`EdgeSource::for_each_chunk`] delivers the edge stream in **plan
//! order** — timestamps ascending, and `(u, v)`-sorted within a timestamp
//! — as non-empty chunks of at most `max_chunk` edges that never span a
//! timestamp boundary. `(t, chunk)` identifies each unit exactly like
//! [`EdgeSink::accept`](crate::sink::EdgeSink::accept) does on the emit
//! side; chunk indices restart at 0 on every timestamp. Consumers may
//! rely on this order: [`GraphAssembler`] rebuilds a [`TemporalGraph`]
//! from it without ever re-sorting, and `tg-sampling` folds it into the
//! Eq. 2 sampling population one timestamp at a time.

use crate::temporal::{TemporalEdge, TemporalGraph, Time};

/// Producer of an observed temporal-edge stream, in `(t, u, v)` order,
/// chunked so consumers hold only `O(max_chunk)` edges at a time.
///
/// Mirrors [`EdgeSink`](crate::sink::EdgeSink): where a sink receives the
/// generated stream unit by unit, a source yields the observed stream the
/// same way. See the [module docs](crate::source) for the chunk contract.
pub trait EdgeSource {
    /// Error the source can raise mid-stream (I/O, corruption, …).
    /// Infallible in-memory sources use [`std::convert::Infallible`].
    type Error: std::error::Error;

    /// Number of nodes of the underlying graph.
    fn n_nodes(&self) -> usize;

    /// Number of timestamps `T` of the underlying graph.
    fn n_timestamps(&self) -> usize;

    /// Total number of temporal edges the stream will yield.
    fn n_edges(&self) -> u64;

    /// Stream every edge as per-timestamp chunks of at most `max_chunk`
    /// edges (clamped to at least 1), calling `f(t, chunk, edges)` for
    /// each unit in plan order. Restartable: each call re-streams from
    /// the beginning.
    fn for_each_chunk(
        &mut self,
        max_chunk: usize,
        f: &mut dyn FnMut(Time, u32, &[TemporalEdge]),
    ) -> Result<(), Self::Error>;
}

/// [`EdgeSource`] over an already-materialised [`TemporalGraph`] — the
/// in-memory twin of `tg-store`'s `StoreSource`, and the adapter that
/// lets chunk-consuming code (graph assembly, sampler-population
/// construction) run identically on either path.
pub struct InMemorySource<'a> {
    g: &'a TemporalGraph,
}

impl<'a> InMemorySource<'a> {
    /// Wrap a graph borrow.
    pub fn new(g: &'a TemporalGraph) -> Self {
        InMemorySource { g }
    }
}

impl EdgeSource for InMemorySource<'_> {
    type Error = std::convert::Infallible;

    fn n_nodes(&self) -> usize {
        self.g.n_nodes()
    }

    fn n_timestamps(&self) -> usize {
        self.g.n_timestamps()
    }

    fn n_edges(&self) -> u64 {
        self.g.n_edges() as u64
    }

    fn for_each_chunk(
        &mut self,
        max_chunk: usize,
        f: &mut dyn FnMut(Time, u32, &[TemporalEdge]),
    ) -> Result<(), Self::Error> {
        let max_chunk = max_chunk.max(1);
        for t in 0..self.g.n_timestamps() as Time {
            for (ci, chunk) in self.g.edges_at(t).chunks(max_chunk).enumerate() {
                f(t, ci as u32, chunk);
            }
        }
        Ok(())
    }
}

/// Why a chunk stream could not be assembled into a [`TemporalGraph`].
#[derive(Debug, PartialEq, Eq)]
pub enum AssembleError {
    /// An edge endpoint was `>= n_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The assembler's node bound.
        n_nodes: usize,
    },
    /// A chunk carried a timestamp `>= n_timestamps`.
    TimeOutOfRange {
        /// The offending timestamp.
        t: Time,
        /// The assembler's timestamp bound.
        n_timestamps: usize,
    },
    /// A chunk arrived for a timestamp earlier than one already closed,
    /// or an edge inside a chunk disagreed with the chunk's timestamp —
    /// the source violated the plan-order contract.
    OutOfOrder {
        /// Human-readable description of the violation.
        what: String,
    },
    /// The source declared zero timestamps — no valid temporal-graph
    /// shape exists to assemble into.
    NoTimestamps,
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "edge endpoint {node} out of range (< {n_nodes})")
            }
            AssembleError::TimeOutOfRange { t, n_timestamps } => {
                write!(f, "timestamp {t} out of range (< {n_timestamps})")
            }
            AssembleError::OutOfOrder { what } => {
                write!(f, "source violated the chunk-order contract: {what}")
            }
            AssembleError::NoTimestamps => {
                write!(f, "source declares zero timestamps — nothing to assemble")
            }
        }
    }
}

impl std::error::Error for AssembleError {}

/// Incremental [`TemporalGraph`] construction from a sorted chunk stream.
///
/// [`TemporalGraph::from_edges`] takes the whole edge list at once and
/// re-sorts it, which means the ingest path briefly holds the unsorted
/// input *and* the sorted copy. The assembler instead consumes the
/// already-ordered chunks an [`EdgeSource`] yields: edges append straight
/// into an exactly-reserved array, per-timestamp offsets accumulate as
/// timestamps close, and the `(t, v, u)` in-order permutation is sorted
/// one timestamp slice at a time. Peak memory above the finished graph is
/// therefore `O(max_chunk)` (the caller's chunk buffer), independent of
/// the total edge count.
pub struct GraphAssembler {
    n: usize,
    t: usize,
    edges: Vec<TemporalEdge>,
    in_order: Vec<u32>,
    time_offsets: Vec<usize>,
    /// Timestamp whose slice is currently open (edges may still arrive).
    open_t: Time,
    /// Start of the open timestamp's slice in `edges` (for the in-order
    /// per-timestamp sort on close).
    open_start: usize,
}

impl GraphAssembler {
    /// Assembler for a graph of known shape; `n_edges_hint` pre-reserves
    /// the edge array exactly (pass the source's [`EdgeSource::n_edges`]).
    pub fn new(n_nodes: usize, n_timestamps: usize, n_edges_hint: usize) -> Self {
        assert!(
            n_timestamps > 0,
            "temporal graph needs at least one timestamp"
        );
        GraphAssembler {
            n: n_nodes,
            t: n_timestamps,
            edges: Vec::with_capacity(n_edges_hint),
            in_order: Vec::with_capacity(n_edges_hint),
            time_offsets: Vec::with_capacity(n_timestamps + 1),
            open_t: 0,
            open_start: 0,
        }
    }

    /// Close timestamp slices up to (excluding) `t`: record offsets and
    /// sort each closed slice's in-order permutation by `(v, u)`.
    fn close_until(&mut self, t: Time) {
        while self.open_t < t {
            self.time_offsets.push(self.open_start);
            let slice = &mut self.in_order[self.open_start..];
            let edges = &self.edges;
            slice.sort_unstable_by_key(|&i| {
                let e = edges[i as usize];
                (e.v, e.u)
            });
            self.open_start = self.edges.len();
            self.open_t += 1;
        }
    }

    /// Feed one chunk of edges, all at timestamp `t`. Chunks must honor
    /// the [`EdgeSource`] contract (timestamps ascending, `(u, v)` sorted
    /// within a timestamp).
    pub fn accept(&mut self, t: Time, edges: &[TemporalEdge]) -> Result<(), AssembleError> {
        if (t as usize) >= self.t {
            return Err(AssembleError::TimeOutOfRange {
                t,
                n_timestamps: self.t,
            });
        }
        if t < self.open_t {
            return Err(AssembleError::OutOfOrder {
                what: format!("chunk at t={t} after timestamp {} closed", self.open_t),
            });
        }
        self.close_until(t);
        for e in edges {
            if (e.u as usize) >= self.n || (e.v as usize) >= self.n {
                return Err(AssembleError::NodeOutOfRange {
                    node: e.u.max(e.v),
                    n_nodes: self.n,
                });
            }
            if e.t != t {
                return Err(AssembleError::OutOfOrder {
                    what: format!("edge {e:?} inside a t={t} chunk"),
                });
            }
            if let Some(last) = self.edges.last() {
                if last.t == t && (last.u, last.v) > (e.u, e.v) {
                    return Err(AssembleError::OutOfOrder {
                        what: format!("edge {e:?} after {last:?} within t={t}"),
                    });
                }
            }
            self.in_order.push(self.edges.len() as u32);
            self.edges.push(*e);
        }
        Ok(())
    }

    /// Edges accepted so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Close the stream and produce the graph. Equivalent to
    /// [`TemporalGraph::from_edges`] over the concatenated chunks
    /// (regression-tested), without the sort or the staging copy.
    pub fn finish(mut self) -> TemporalGraph {
        self.close_until(self.t as Time);
        self.time_offsets.push(self.edges.len());
        TemporalGraph::from_sorted_parts(
            self.n,
            self.t,
            self.edges,
            self.in_order,
            self.time_offsets,
        )
    }
}

/// Error of [`read_graph`]: either the source failed mid-stream or the
/// stream it produced violated the chunk contract.
#[derive(Debug)]
pub enum SourceError<E> {
    /// The underlying source failed (I/O, corruption, …).
    Source(E),
    /// The stream could not be assembled into a graph.
    Assemble(AssembleError),
}

impl<E: std::fmt::Display> std::fmt::Display for SourceError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Source(e) => write!(f, "edge source failed: {e}"),
            SourceError::Assemble(e) => write!(f, "bad edge stream: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for SourceError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Source(e) => Some(e),
            SourceError::Assemble(e) => Some(e),
        }
    }
}

/// Default chunk size for [`read_graph`] and other whole-stream
/// consumers: large enough to amortise per-chunk overhead, small enough
/// that the resident batch stays in the L2 cache (8192 edges ≈ 96 KiB).
pub const DEFAULT_CHUNK_EDGES: usize = 8192;

/// Materialise a full [`TemporalGraph`] from any [`EdgeSource`] by
/// streaming its chunks through a [`GraphAssembler`]. Peak memory above
/// the finished graph is `O(max_chunk)`.
pub fn read_graph<S: EdgeSource>(
    source: &mut S,
    max_chunk: usize,
) -> Result<TemporalGraph, SourceError<S::Error>> {
    if source.n_timestamps() == 0 {
        // GraphAssembler::new treats a zero-timestamp shape as a
        // programmer error (panic); a *source* declaring one is input,
        // so it must surface through the typed-error path instead.
        return Err(SourceError::Assemble(AssembleError::NoTimestamps));
    }
    let mut asm = GraphAssembler::new(
        source.n_nodes(),
        source.n_timestamps(),
        source.n_edges() as usize,
    );
    let mut failed: Option<AssembleError> = None;
    source
        .for_each_chunk(max_chunk, &mut |t, _chunk, edges| {
            if failed.is_none() {
                if let Err(e) = asm.accept(t, edges) {
                    failed = Some(e);
                }
            }
        })
        .map_err(SourceError::Source)?;
    match failed {
        Some(e) => Err(SourceError::Assemble(e)),
        None => Ok(asm.finish()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TemporalGraph {
        TemporalGraph::from_edges(
            4,
            3,
            vec![
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(2, 0, 1),
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(0, 1, 1), // multiplicity kept
            ],
        )
    }

    #[test]
    fn in_memory_source_reports_shape() {
        let g = toy();
        let s = InMemorySource::new(&g);
        assert_eq!(s.n_nodes(), 4);
        assert_eq!(s.n_timestamps(), 3);
        assert_eq!(s.n_edges(), 5);
    }

    #[test]
    fn chunks_are_per_timestamp_in_plan_order() {
        let g = toy();
        let mut s = InMemorySource::new(&g);
        let mut seen: Vec<(Time, u32, Vec<TemporalEdge>)> = Vec::new();
        s.for_each_chunk(1, &mut |t, c, e| seen.push((t, c, e.to_vec())))
            .unwrap();
        // chunk size 1: one chunk per edge, chunk index restarting per t
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0].0, 0);
        assert_eq!((seen[0].1, seen[1].1), (0, 1));
        assert_eq!((seen[2].0, seen[2].1), (1, 0));
        for w in seen.windows(2) {
            assert!((w[0].0, w[0].1) < (w[1].0, w[1].1));
        }
        let flat: Vec<TemporalEdge> = seen.into_iter().flat_map(|(_, _, e)| e).collect();
        assert_eq!(flat, g.edges());
    }

    #[test]
    fn read_graph_round_trips_any_chunk_size() {
        let g = toy();
        for chunk in [1usize, 2, 3, 100] {
            let rebuilt = read_graph(&mut InMemorySource::new(&g), chunk).unwrap();
            assert_eq!(rebuilt.n_nodes(), g.n_nodes());
            assert_eq!(rebuilt.n_timestamps(), g.n_timestamps());
            assert_eq!(rebuilt.edges(), g.edges(), "chunk={chunk}");
            // in-order permutation must match too: compare neighbor queries
            for t in 0..g.n_timestamps() as Time {
                for v in 0..g.n_nodes() as u32 {
                    assert_eq!(
                        rebuilt.in_neighbors_at(v, t).collect::<Vec<_>>(),
                        g.in_neighbors_at(v, t).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn assembler_equals_from_edges_on_empty_timestamps() {
        // leading, middle, and trailing empty timestamps all close cleanly
        let g = TemporalGraph::from_edges(
            3,
            5,
            vec![TemporalEdge::new(0, 1, 1), TemporalEdge::new(1, 2, 3)],
        );
        let rebuilt = read_graph(&mut InMemorySource::new(&g), 4).unwrap();
        assert_eq!(rebuilt.edges(), g.edges());
        assert_eq!(
            rebuilt.edge_counts_per_timestamp(),
            g.edge_counts_per_timestamp()
        );
    }

    #[test]
    fn assembler_rejects_out_of_range_and_disorder() {
        let mut asm = GraphAssembler::new(2, 2, 4);
        assert!(matches!(
            asm.accept(5, &[TemporalEdge::new(0, 1, 5)]),
            Err(AssembleError::TimeOutOfRange { t: 5, .. })
        ));
        assert!(matches!(
            asm.accept(0, &[TemporalEdge::new(0, 7, 0)]),
            Err(AssembleError::NodeOutOfRange { node: 7, .. })
        ));
        asm.accept(1, &[TemporalEdge::new(1, 0, 1)]).unwrap();
        // timestamp regression
        assert!(matches!(
            asm.accept(0, &[TemporalEdge::new(0, 1, 0)]),
            Err(AssembleError::OutOfOrder { .. })
        ));
        // unsorted within a timestamp
        let mut asm = GraphAssembler::new(3, 1, 4);
        asm.accept(0, &[TemporalEdge::new(1, 0, 0)]).unwrap();
        assert!(matches!(
            asm.accept(0, &[TemporalEdge::new(0, 1, 0)]),
            Err(AssembleError::OutOfOrder { .. })
        ));
        // edge timestamp disagreeing with the chunk timestamp
        let mut asm = GraphAssembler::new(3, 2, 4);
        assert!(matches!(
            asm.accept(0, &[TemporalEdge::new(0, 1, 1)]),
            Err(AssembleError::OutOfOrder { .. })
        ));
    }

    #[test]
    fn zero_timestamp_source_is_a_typed_error_not_a_panic() {
        struct EmptyShape;
        impl EdgeSource for EmptyShape {
            type Error = std::convert::Infallible;
            fn n_nodes(&self) -> usize {
                3
            }
            fn n_timestamps(&self) -> usize {
                0
            }
            fn n_edges(&self) -> u64 {
                0
            }
            fn for_each_chunk(
                &mut self,
                _max_chunk: usize,
                _f: &mut dyn FnMut(Time, u32, &[TemporalEdge]),
            ) -> Result<(), Self::Error> {
                Ok(())
            }
        }
        assert!(matches!(
            read_graph(&mut EmptyShape, 8),
            Err(SourceError::Assemble(AssembleError::NoTimestamps))
        ));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = AssembleError::NodeOutOfRange {
            node: 9,
            n_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        let e = AssembleError::TimeOutOfRange {
            t: 3,
            n_timestamps: 2,
        };
        assert!(e.to_string().contains('3'));
        let s: SourceError<std::io::Error> =
            SourceError::Assemble(AssembleError::OutOfOrder { what: "x".into() });
        assert!(s.to_string().contains("bad edge stream"));
    }
}
