//! The central temporal-graph container.
//!
//! Following the paper (§III, Def. 2), a temporal graph is a series of graph
//! snapshots `{G_1, ..., G_T}`: every edge carries a timestamp `t` in
//! `0..T`. We store one flat edge array sorted by `(t, u, v)` plus a twin
//! sort by `(t, v, u)`, giving O(log m) neighbor queries per timestamp
//! without materialising per-timestamp CSR offset tables (which would cost
//! O(nT) memory — prohibitive at UBUNTU scale, ~14M temporal nodes).

use serde::{Deserialize, Serialize};

/// Node identifier (dense, `0..n`).
pub type NodeId = u32;
/// Timestamp (dense, `0..T`).
pub type Time = u32;

/// A directed timestamped edge `u -> v` at time `t`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TemporalEdge {
    /// Timestamp (field order puts `t` first so derived `Ord` sorts by
    /// time, then source, then target — the engine's emission order).
    pub t: Time,
    /// Source node.
    pub u: NodeId,
    /// Target node.
    pub v: NodeId,
}

impl TemporalEdge {
    /// Edge `u -> v` at time `t`.
    pub fn new(u: NodeId, v: NodeId, t: Time) -> Self {
        TemporalEdge { t, u, v }
    }
}

/// An immutable temporal graph: `n` nodes, `T` timestamps, edges sorted by
/// `(t, u, v)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemporalGraph {
    n: usize,
    t: usize,
    /// Sorted by (t, u, v): out-edge order.
    edges: Vec<TemporalEdge>,
    /// Permutation of `edges` sorted by (t, v, u): in-edge order. Stores
    /// indices into `edges`.
    in_order: Vec<u32>,
    /// `time_offsets[t]..time_offsets[t+1]` is the slice of `edges` at `t`.
    time_offsets: Vec<usize>,
}

impl TemporalGraph {
    /// Build from an arbitrary edge list. Panics if any endpoint `>= n` or
    /// timestamp `>= t`. Duplicate edges are kept (temporal multigraph).
    pub fn from_edges(n: usize, t: usize, mut edges: Vec<TemporalEdge>) -> Self {
        assert!(t > 0, "temporal graph needs at least one timestamp");
        for e in &edges {
            assert!(
                (e.u as usize) < n && (e.v as usize) < n,
                "edge endpoint out of range: {e:?}"
            );
            assert!((e.t as usize) < t, "edge timestamp out of range: {e:?}");
        }
        edges.sort_unstable();
        let mut in_order: Vec<u32> = (0..edges.len() as u32).collect();
        in_order.sort_unstable_by_key(|&i| {
            let e = edges[i as usize];
            (e.t, e.v, e.u)
        });
        let mut time_offsets = vec![0usize; t + 1];
        for e in &edges {
            time_offsets[e.t as usize + 1] += 1;
        }
        for i in 0..t {
            time_offsets[i + 1] += time_offsets[i];
        }
        TemporalGraph {
            n,
            t,
            edges,
            in_order,
            time_offsets,
        }
    }

    /// Assemble from already-validated sorted parts — the streaming
    /// construction path of [`crate::source::GraphAssembler`], which
    /// builds `edges` / `in_order` / `time_offsets` incrementally from
    /// per-timestamp chunks and therefore never re-sorts or copies the
    /// edge array. Callers must uphold the [`TemporalGraph`] invariants:
    /// `edges` sorted by `(t, u, v)` with endpoints `< n` and timestamps
    /// `< t`, `in_order` the `(t, v, u)` permutation, and `time_offsets`
    /// the per-timestamp prefix sums.
    pub(crate) fn from_sorted_parts(
        n: usize,
        t: usize,
        edges: Vec<TemporalEdge>,
        in_order: Vec<u32>,
        time_offsets: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(time_offsets.len(), t + 1);
        debug_assert_eq!(in_order.len(), edges.len());
        debug_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        TemporalGraph {
            n,
            t,
            edges,
            in_order,
            time_offsets,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of timestamps `T`.
    pub fn n_timestamps(&self) -> usize {
        self.t
    }

    /// Total number of temporal edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, sorted by `(t, u, v)`.
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Edges at exactly timestamp `t`.
    pub fn edges_at(&self, t: Time) -> &[TemporalEdge] {
        let t = t as usize;
        assert!(t < self.t, "timestamp {t} out of range");
        &self.edges[self.time_offsets[t]..self.time_offsets[t + 1]]
    }

    /// Edges with timestamp in `0..=t` (the accumulated snapshot contents).
    pub fn edges_until(&self, t: Time) -> &[TemporalEdge] {
        let t = (t as usize).min(self.t - 1);
        &self.edges[..self.time_offsets[t + 1]]
    }

    /// Number of edges at each timestamp (the generation budget per `t`).
    pub fn edge_counts_per_timestamp(&self) -> Vec<usize> {
        (0..self.t)
            .map(|t| self.time_offsets[t + 1] - self.time_offsets[t])
            .collect()
    }

    /// Out-neighbors of `u` at exactly timestamp `t` (with multiplicity).
    pub fn out_neighbors_at(&self, u: NodeId, t: Time) -> impl Iterator<Item = NodeId> + '_ {
        let slice = self.edges_at(t);
        let lo = slice.partition_point(|e| e.u < u);
        let hi = slice.partition_point(|e| e.u <= u);
        slice[lo..hi].iter().map(|e| e.v)
    }

    /// In-neighbors of `v` at exactly timestamp `t` (with multiplicity).
    pub fn in_neighbors_at(&self, v: NodeId, t: Time) -> impl Iterator<Item = NodeId> + '_ {
        let t_us = t as usize;
        assert!(t_us < self.t);
        let order = &self.in_order[self.time_offsets[t_us]..self.time_offsets[t_us + 1]];
        let lo = order.partition_point(|&i| self.edges[i as usize].v < v);
        let hi = order.partition_point(|&i| self.edges[i as usize].v <= v);
        order[lo..hi].iter().map(move |&i| self.edges[i as usize].u)
    }

    /// Undirected temporal neighbors of `(u, t)` within the time window
    /// `|t - t'| <= t_n` (Def. 3 with `d_N = 1`): deduplicated node list.
    pub fn temporal_neighbors(&self, u: NodeId, t: Time, t_n: Time) -> Vec<NodeId> {
        let lo = t.saturating_sub(t_n);
        let hi = (t as usize + t_n as usize).min(self.t - 1) as Time;
        let mut out: Vec<NodeId> = Vec::new();
        for tt in lo..=hi {
            out.extend(self.out_neighbors_at(u, tt));
            out.extend(self.in_neighbors_at(u, tt));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Temporal degree of `(u, t)`: number of incident temporal edges at
    /// exactly `t` (in + out, with multiplicity). This drives the
    /// degree-weighted initial-node sampling of Eq. 2.
    pub fn temporal_degree(&self, u: NodeId, t: Time) -> usize {
        self.out_neighbors_at(u, t).count() + self.in_neighbors_at(u, t).count()
    }

    /// All occurring temporal nodes `(u, t)` — pairs with at least one
    /// incident edge — with their temporal degrees. This is the sampling
    /// population `~V` of the paper.
    pub fn temporal_nodes(&self) -> Vec<(NodeId, Time, usize)> {
        // lint: allow(determinism) — counts are drained into a Vec that
        // is sort_unstable'd by (v, t) before anything reads it
        let mut counts: std::collections::HashMap<(NodeId, Time), usize> =
            std::collections::HashMap::new();
        for e in &self.edges {
            *counts.entry((e.u, e.t)).or_insert(0) += 1;
            *counts.entry((e.v, e.t)).or_insert(0) += 1;
        }
        let mut out: Vec<(NodeId, Time, usize)> =
            counts.into_iter().map(|((u, t), d)| (u, t, d)).collect();
        out.sort_unstable();
        out
    }

    /// Static (time-collapsed) degree of each node, counting both
    /// directions, with multiplicity.
    pub fn static_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// Rebuild with edges strictly deduplicated per `(t, u, v)`.
    pub fn dedup(&self) -> TemporalGraph {
        let mut edges = self.edges.clone();
        edges.dedup();
        TemporalGraph::from_edges(self.n, self.t, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TemporalGraph {
        // t=0: 0->1, 1->2 ; t=1: 2->0, 0->1 ; t=2: (empty)
        TemporalGraph::from_edges(
            3,
            3,
            vec![
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(2, 0, 1),
                TemporalEdge::new(0, 1, 1),
            ],
        )
    }

    #[test]
    fn basic_counts() {
        let g = toy();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_timestamps(), 3);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.edge_counts_per_timestamp(), vec![2, 2, 0]);
    }

    #[test]
    fn edges_sorted_and_sliced() {
        let g = toy();
        assert_eq!(g.edges_at(0).len(), 2);
        assert_eq!(g.edges_at(0)[0], TemporalEdge::new(0, 1, 0));
        assert_eq!(g.edges_at(2).len(), 0);
        assert_eq!(g.edges_until(1).len(), 4);
        assert_eq!(g.edges_until(0).len(), 2);
    }

    #[test]
    fn neighbor_queries() {
        let g = toy();
        assert_eq!(g.out_neighbors_at(0, 0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.out_neighbors_at(0, 1).collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.in_neighbors_at(0, 1).collect::<Vec<_>>(), vec![2]);
        assert_eq!(g.in_neighbors_at(1, 0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.out_neighbors_at(1, 1).count(), 0);
    }

    #[test]
    fn temporal_neighbors_window() {
        let g = toy();
        // (0, t=0) window 0: out {1}; window 1 adds t=1 edges: out {1}, in {2}
        assert_eq!(g.temporal_neighbors(0, 0, 0), vec![1]);
        assert_eq!(g.temporal_neighbors(0, 0, 1), vec![1, 2]);
    }

    #[test]
    fn temporal_degrees_match_incidence() {
        let g = toy();
        assert_eq!(g.temporal_degree(0, 0), 1);
        assert_eq!(g.temporal_degree(1, 0), 2); // in from 0, out to 2
        assert_eq!(g.temporal_degree(0, 1), 2); // out to 1, in from 2
        assert_eq!(g.temporal_degree(2, 2), 0);
    }

    #[test]
    fn temporal_nodes_population() {
        let g = toy();
        let tn = g.temporal_nodes();
        // occurrences: (0,0),(1,0),(2,0) at t0; (0,1),(1,1),(2,1) at t1
        assert_eq!(tn.len(), 6);
        let total_deg: usize = tn.iter().map(|&(_, _, d)| d).sum();
        assert_eq!(total_deg, 2 * g.n_edges());
    }

    #[test]
    fn static_degrees_sum_to_twice_edges() {
        let g = toy();
        let deg = g.static_degrees();
        assert_eq!(deg.iter().sum::<usize>(), 2 * g.n_edges());
        assert_eq!(deg[0], 3);
    }

    #[test]
    fn multigraph_kept_then_dedup() {
        let g = TemporalGraph::from_edges(
            2,
            1,
            vec![TemporalEdge::new(0, 1, 0), TemporalEdge::new(0, 1, 0)],
        );
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.dedup().n_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        TemporalGraph::from_edges(2, 1, vec![TemporalEdge::new(0, 5, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_timestamp() {
        TemporalGraph::from_edges(2, 1, vec![TemporalEdge::new(0, 1, 3)]);
    }
}
