//! Edge-list I/O for temporal graphs.
//!
//! The standard interchange format used by the paper's datasets (SNAP,
//! Bitcoin OTC/Alpha, StackExchange dumps) is a whitespace-separated text
//! file of `src dst timestamp` lines. [`read_edge_list`] accepts that
//! format directly (comments beginning with `#` or `%` are skipped) and
//! compacts raw ids/timestamps into the dense `0..n` / `0..T` ranges via
//! [`crate::builder::TemporalGraphBuilder`].

use crate::builder::TemporalGraphBuilder;
use crate::temporal::TemporalGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the edge-list parser.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Parse { line: usize, msg: String },
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            IoError::Empty => write!(f, "edge list contained no edges"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse `src dst timestamp` lines from any reader. Raw node ids and
/// timestamps may be arbitrary `u64`s; they are compacted densely.
/// `n_buckets`, when given, quantises raw timestamps into that many
/// equal-width buckets (the paper aggregates fine-grained Unix timestamps
/// into `T` snapshots this way).
pub fn read_edge_list<R: Read>(
    reader: R,
    n_buckets: Option<usize>,
) -> Result<TemporalGraph, IoError> {
    let buf = BufReader::new(reader);
    let mut builder = TemporalGraphBuilder::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: line_no,
                msg: format!("missing {what}"),
            })?
            .parse::<f64>()
            .map(|x| x as u64)
            .map_err(|e| IoError::Parse {
                line: line_no,
                msg: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "src")?;
        let v = parse(it.next(), "dst")?;
        let t = parse(it.next(), "timestamp")?;
        builder.add_raw(u, v, t);
    }
    if builder.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(match n_buckets {
        Some(b) => builder.build_bucketed(b),
        None => builder.build(),
    })
}

/// Load a temporal graph from a `src dst timestamp` file.
pub fn load_edge_list(
    path: impl AsRef<Path>,
    n_buckets: Option<usize>,
) -> Result<TemporalGraph, IoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, n_buckets)
}

/// Write a temporal graph as `src dst timestamp` lines.
pub fn write_edge_list<W: Write>(g: &TemporalGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.t)?;
    }
    w.flush()?;
    Ok(())
}

/// Save a temporal graph to a `src dst timestamp` file.
pub fn save_edge_list(g: &TemporalGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        let text = "# comment\n0 1 10\n1 2 20\n\n% also comment\n2 0 10\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.n_timestamps(), 2); // raw times 10 & 20 compact to 0 & 1
        assert_eq!(g.edges_at(0).len(), 2);
    }

    #[test]
    fn parse_with_sparse_ids() {
        let text = "1000 2000 5\n2000 3000 7\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_timestamps(), 2);
    }

    #[test]
    fn parse_float_timestamps() {
        // some dumps carry float epoch seconds
        let text = "0 1 100.5\n1 0 200.7\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn bucketing_compresses_timestamps() {
        let text = "0 1 0\n0 1 10\n0 1 20\n0 1 30\n0 1 40\n0 1 50\n";
        let g = read_edge_list(text.as_bytes(), Some(3)).unwrap();
        assert_eq!(g.n_timestamps(), 3);
        assert_eq!(g.n_edges(), 6);
        assert_eq!(g.edges_at(0).len(), 2);
    }

    #[test]
    fn roundtrip_write_read() {
        let text = "0 1 0\n1 2 1\n2 0 1\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), None).unwrap();
        assert_eq!(g.n_nodes(), g2.n_nodes());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn error_on_garbage() {
        let text = "0 1 notanumber\n";
        let err = read_edge_list(text.as_bytes(), None).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn error_on_missing_column() {
        let text = "0 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes(), None),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn error_on_empty() {
        assert!(matches!(
            read_edge_list("#nope\n".as_bytes(), None),
            Err(IoError::Empty)
        ));
    }
}
