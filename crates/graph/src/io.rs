//! Edge-list I/O for temporal graphs.
//!
//! The standard interchange format used by the paper's datasets (SNAP,
//! Bitcoin OTC/Alpha, StackExchange dumps) is a whitespace-separated text
//! file of `src dst timestamp` lines. [`read_edge_list`] accepts that
//! format directly (comments beginning with `#` or `%` are skipped) and
//! compacts raw ids/timestamps into the dense `0..n` / `0..T` ranges via
//! [`crate::builder::TemporalGraphBuilder`].

use crate::builder::TemporalGraphBuilder;
use crate::sink::EdgeSink;
use crate::temporal::{TemporalEdge, TemporalGraph, Time};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced by the edge-list parser.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem/stream error.
    Io(std::io::Error),
    /// A line failed to parse as a `src dst timestamp` record.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// The input contained no edges at all.
    Empty,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            IoError::Empty => write!(f, "edge list contained no edges"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<tg_faults::FaultError> for IoError {
    fn from(e: tg_faults::FaultError) -> Self {
        IoError::Io(e.into())
    }
}

/// The temporary sibling `atomic_write_bytes` stages into before the
/// rename: `<file name>.tmp` in the same directory (same filesystem, so
/// the rename is atomic). A leftover `.tmp` after a crash is inert — no
/// reader ever opens it — and the next write truncates it.
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("artifact"));
    name.push(".tmp");
    path.with_file_name(name)
}

/// Crash-safe whole-file write: stage the bytes in a [`tmp_sibling`],
/// `fsync`, then atomically rename over `path`. A crash at any point
/// leaves either the old file intact or the complete new file — never a
/// torn mix. This is the shared persistence primitive for every run-dir
/// artifact (checkpoints, manifests, model snapshots, store commits).
///
/// Fault points (see `tg-faults`), each carrying the destination path as
/// their argument: `persist.atomic.start` before anything is written,
/// `persist.atomic.partial` between the two halves of the staged write
/// (a crash here models a torn write), and `persist.atomic.unrenamed`
/// after the fsync but before the rename.
pub fn atomic_write_bytes(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let path_str = path.display().to_string();
    tg_faults::fail_point!("persist.atomic.start", path_str.clone());
    let tmp = tmp_sibling(path);
    let mut f = std::fs::File::create(&tmp)?;
    let mid = bytes.len() / 2;
    f.write_all(&bytes[..mid])?;
    tg_faults::fail_point!("persist.atomic.partial", path_str.clone());
    f.write_all(&bytes[mid..])?;
    f.sync_all()?;
    drop(f);
    tg_faults::fail_point!("persist.atomic.unrenamed", path_str);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Parse `src dst timestamp` lines from any reader. Raw node ids and
/// timestamps may be arbitrary `u64`s; they are compacted densely.
/// `n_buckets`, when given, quantises raw timestamps into that many
/// equal-width buckets (the paper aggregates fine-grained Unix timestamps
/// into `T` snapshots this way).
pub fn read_edge_list<R: Read>(
    reader: R,
    n_buckets: Option<usize>,
) -> Result<TemporalGraph, IoError> {
    let buf = BufReader::new(reader);
    let mut builder = TemporalGraphBuilder::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: line_no,
                msg: format!("missing {what}"),
            })?
            .parse::<f64>()
            .map(|x| x as u64)
            .map_err(|e| IoError::Parse {
                line: line_no,
                msg: format!("bad {what}: {e}"),
            })
        };
        let u = parse(it.next(), "src")?;
        let v = parse(it.next(), "dst")?;
        let t = parse(it.next(), "timestamp")?;
        builder.add_raw(u, v, t);
    }
    if builder.is_empty() {
        return Err(IoError::Empty);
    }
    Ok(match n_buckets {
        Some(b) => builder.build_bucketed(b),
        None => builder.build(),
    })
}

/// Load a temporal graph from a `src dst timestamp` file.
pub fn load_edge_list(
    path: impl AsRef<Path>,
    n_buckets: Option<usize>,
) -> Result<TemporalGraph, IoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, n_buckets)
}

/// Write a temporal graph as `src dst timestamp` lines.
pub fn write_edge_list<W: Write>(g: &TemporalGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for e in g.edges() {
        writeln!(w, "{} {} {}", e.u, e.v, e.t)?;
    }
    w.flush()?;
    Ok(())
}

/// Save a temporal graph to a `src dst timestamp` file.
pub fn save_edge_list(g: &TemporalGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

/// [`save_edge_list`], crash-safely: the lines are staged in a
/// [`tmp_sibling`], fsynced, and renamed over `path` in one step, so an
/// interrupted save never leaves a truncated edge list where a complete
/// one used to be.
pub fn save_edge_list_atomic(g: &TemporalGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    let path_str = path.display().to_string();
    tg_faults::fail_point!("persist.atomic.start", path_str.clone());
    let tmp = tmp_sibling(path);
    let f = std::fs::File::create(&tmp)?;
    write_edge_list(g, &f)?;
    f.sync_all()?;
    tg_faults::fail_point!("persist.atomic.unrenamed", path_str);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Parse `src dst timestamp` lines **without id/timestamp compaction**:
/// every id must already be a dense `NodeId < n_nodes` and every
/// timestamp a dense `Time < n_timestamps`. This is the loader for files
/// produced by [`StreamingWriterSink`] / [`write_edge_list`], where the
/// ids are already dense and compaction would silently relabel any graph
/// whose generated edges miss a node or timestamp.
pub fn read_edge_list_exact<R: Read>(
    reader: R,
    n_nodes: usize,
    n_timestamps: usize,
) -> Result<TemporalGraph, IoError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<TemporalEdge> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let s = line.trim();
        if s.is_empty() || s.starts_with('#') || s.starts_with('%') {
            continue;
        }
        let mut it = s.split_whitespace();
        let mut parse = |what: &str, bound: usize| -> Result<u32, IoError> {
            let v = it
                .next()
                .ok_or_else(|| IoError::Parse {
                    line: line_no,
                    msg: format!("missing {what}"),
                })?
                .parse::<u32>()
                .map_err(|e| IoError::Parse {
                    line: line_no,
                    msg: format!("bad {what}: {e}"),
                })?;
            if (v as usize) >= bound {
                return Err(IoError::Parse {
                    line: line_no,
                    msg: format!("{what} {v} out of range (< {bound})"),
                });
            }
            Ok(v)
        };
        let u = parse("src", n_nodes)?;
        let v = parse("dst", n_nodes)?;
        let t = parse("timestamp", n_timestamps)?;
        if it.next().is_some() {
            // A fourth token means the line is not a clean `u v t` record
            // (e.g. two lines spliced by a missing newline in a merge);
            // accepting it would silently drop data.
            return Err(IoError::Parse {
                line: line_no,
                msg: "trailing tokens after timestamp".into(),
            });
        }
        edges.push(TemporalEdge::new(u, v, t));
    }
    Ok(TemporalGraph::from_edges(n_nodes, n_timestamps, edges))
}

/// Load a dense edge-list file without compaction; see
/// [`read_edge_list_exact`].
pub fn load_edge_list_exact(
    path: impl AsRef<Path>,
    n_nodes: usize,
    n_timestamps: usize,
) -> Result<TemporalGraph, IoError> {
    let f = std::fs::File::open(path)?;
    read_edge_list_exact(f, n_nodes, n_timestamps)
}

/// [`EdgeSink`] that writes `src dst timestamp` lines straight through a
/// buffered writer as units are emitted, retaining **no edges** — peak
/// memory is bounded by the engine's in-flight unit window, independent
/// of the total edge count.
///
/// Because the simulation engine emits units in plan order (and shard
/// time-ranges partition that order), the files written by per-shard
/// sinks concatenate byte-identically — via [`merge_edge_lists`] — to the
/// file a single-process run would write.
///
/// I/O errors are captured on first occurrence and reported by
/// [`EdgeSink::finish`]; subsequent writes become no-ops.
///
/// # Drop behavior
///
/// The intended protocol is **explicit finish**: call
/// [`EdgeSink::finish`] (or [`StreamingWriterSink::into_inner`]) and
/// check the result — that is the only place deferred write errors are
/// reported. A sink dropped without finishing (early return, panic
/// unwind) still **flushes its buffer best-effort** so the file is not
/// silently truncated at a buffer boundary, but any error from that
/// final flush is swallowed, exactly like `BufWriter`'s own drop. Code
/// that cares whether the bytes landed must finish explicitly.
pub struct StreamingWriterSink<W: Write> {
    /// `Some` until `finish`/`into_inner` consumes the sink (`Option`
    /// only so those methods can move the writer out despite `Drop`).
    writer: Option<BufWriter<W>>,
    n_written: u64,
    err: Option<std::io::Error>,
}

impl<W: Write> StreamingWriterSink<W> {
    /// Wrap any writer (a `File`, a `Vec<u8>`, a socket…).
    pub fn new(writer: W) -> Self {
        StreamingWriterSink {
            writer: Some(BufWriter::new(writer)),
            n_written: 0,
            err: None,
        }
    }

    /// Edges written so far (excluding any failed writes).
    pub fn n_written(&self) -> u64 {
        self.n_written
    }

    /// Flush and hand back the inner writer (useful for in-memory
    /// `Vec<u8>` sinks in tests and benchmarks). Reports any deferred
    /// write error, like [`EdgeSink::finish`].
    pub fn into_inner(mut self) -> Result<W, IoError> {
        if let Some(e) = self.err.take() {
            return Err(IoError::Io(e));
        }
        self.writer
            .take()
            .expect("writer present until consumed")
            .into_inner()
            .map_err(|e| IoError::Io(e.into_error()))
    }
}

impl<W: Write> Drop for StreamingWriterSink<W> {
    fn drop(&mut self) {
        // Dropped without finish(): flush best-effort so the edges
        // already accepted reach the underlying writer (see the type-level
        // "Drop behavior" docs). `BufWriter`'s own drop would do the same,
        // but doing it explicitly documents the contract and keeps it even
        // if the buffering strategy changes.
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }
}

impl StreamingWriterSink<std::fs::File> {
    /// Create (truncating) an edge-list file at `path` and stream into it.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, IoError> {
        Ok(StreamingWriterSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> EdgeSink for StreamingWriterSink<W> {
    type Output = Result<u64, IoError>;

    fn accept(&mut self, _t: Time, _chunk: u32, edges: &[TemporalEdge]) {
        if self.err.is_some() {
            return;
        }
        let w = self.writer.as_mut().expect("writer present until consumed");
        for e in edges {
            if let Err(e) = writeln!(w, "{} {} {}", e.u, e.v, e.t) {
                self.err = Some(e);
                return;
            }
            self.n_written += 1;
        }
    }

    fn finish(mut self) -> Result<u64, IoError> {
        if let Some(e) = self.err.take() {
            return Err(IoError::Io(e));
        }
        self.writer
            .as_mut()
            .expect("writer present until consumed")
            .flush()?;
        Ok(self.n_written)
    }
}

/// Concatenate shard edge-list files, in order, into `out` — a streaming
/// byte copy with O(buffer) memory. When the inputs are the per-shard
/// outputs of [`StreamingWriterSink`] over a partition of the shard
/// manifest, the merged file is byte-identical to the single-process
/// streamed output. A newline is inserted after any non-empty input that
/// does not end with one (hand-edited files), so records never splice
/// across file boundaries. Returns the number of bytes written.
pub fn merge_edge_lists(
    inputs: &[impl AsRef<Path>],
    out: impl AsRef<Path>,
) -> Result<u64, IoError> {
    let mut w = BufWriter::new(std::fs::File::create(out)?);
    let mut total = 0u64;
    let mut buf = vec![0u8; 64 << 10];
    for p in inputs {
        let mut r = std::fs::File::open(p)?;
        let mut last = b'\n';
        loop {
            let n = r.read(&mut buf)?;
            if n == 0 {
                break;
            }
            w.write_all(&buf[..n])?;
            total += n as u64;
            last = buf[n - 1];
        }
        if last != b'\n' {
            w.write_all(b"\n")?;
            total += 1;
        }
    }
    w.flush()?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_list() {
        let text = "# comment\n0 1 10\n1 2 20\n\n% also comment\n2 0 10\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.n_timestamps(), 2); // raw times 10 & 20 compact to 0 & 1
        assert_eq!(g.edges_at(0).len(), 2);
    }

    #[test]
    fn parse_with_sparse_ids() {
        let text = "1000 2000 5\n2000 3000 7\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_timestamps(), 2);
    }

    #[test]
    fn parse_float_timestamps() {
        // some dumps carry float epoch seconds
        let text = "0 1 100.5\n1 0 200.7\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn bucketing_compresses_timestamps() {
        let text = "0 1 0\n0 1 10\n0 1 20\n0 1 30\n0 1 40\n0 1 50\n";
        let g = read_edge_list(text.as_bytes(), Some(3)).unwrap();
        assert_eq!(g.n_timestamps(), 3);
        assert_eq!(g.n_edges(), 6);
        assert_eq!(g.edges_at(0).len(), 2);
    }

    #[test]
    fn roundtrip_write_read() {
        let text = "0 1 0\n1 2 1\n2 0 1\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), None).unwrap();
        assert_eq!(g.n_nodes(), g2.n_nodes());
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn tmp_sibling_stays_in_directory() {
        let p = Path::new("/some/dir/model.json");
        let t = tmp_sibling(p);
        assert_eq!(t, Path::new("/some/dir/model.json.tmp"));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("tgx-io-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("artifact.bin");
        std::fs::write(&target, b"old contents").unwrap();
        atomic_write_bytes(&target, b"new contents").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"new contents");
        assert!(!tmp_sibling(&target).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_edge_list_atomic_roundtrips() {
        let text = "0 1 0\n1 2 1\n2 0 1\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        let dir = std::env::temp_dir().join(format!("tgx-io-atomic-el-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("observed.edges");
        save_edge_list_atomic(&g, &target).unwrap();
        let g2 = load_edge_list(&target, None).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert!(!tmp_sibling(&target).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_on_garbage() {
        let text = "0 1 notanumber\n";
        let err = read_edge_list(text.as_bytes(), None).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn error_on_missing_column() {
        let text = "0 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes(), None),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn error_on_empty() {
        assert!(matches!(
            read_edge_list("#nope\n".as_bytes(), None),
            Err(IoError::Empty)
        ));
    }

    #[test]
    fn exact_reader_keeps_ids_dense() {
        // node 2 and timestamp 1 never appear; the compacting reader
        // would relabel, the exact reader must not
        let text = "0 1 0\n1 0 2\n";
        let g = read_edge_list_exact(text.as_bytes(), 4, 3).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_timestamps(), 3);
        assert_eq!(
            g.edges(),
            &[TemporalEdge::new(0, 1, 0), TemporalEdge::new(1, 0, 2)]
        );
    }

    #[test]
    fn exact_reader_rejects_out_of_range() {
        assert!(matches!(
            read_edge_list_exact("0 9 0\n".as_bytes(), 3, 1),
            Err(IoError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list_exact("0 1 7\n".as_bytes(), 3, 1),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn streaming_sink_matches_write_edge_list() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(1, 2, 0),
            TemporalEdge::new(2, 0, 1),
        ];
        let g = TemporalGraph::from_edges(3, 2, edges.clone());
        let mut via_writer = Vec::new();
        write_edge_list(&g, &mut via_writer).unwrap();

        let mut sink = StreamingWriterSink::new(Vec::new());
        // emit in sorted order (what the engine's plan order gives for a
        // graph whose edges are already sorted)
        sink.accept(0, 0, &edges[..2]);
        sink.accept(1, 0, &edges[2..]);
        assert_eq!(sink.n_written(), 3);
        let buf = sink.into_inner().unwrap();
        assert_eq!(buf, via_writer);
    }

    #[test]
    fn dropped_sink_flushes_buffered_edges() {
        // The explicit-finish contract: finish() is where errors surface,
        // but a sink dropped without it must still flush its buffer — a
        // worker that early-returns after accepting edges must not leave a
        // file truncated at a BufWriter boundary.
        let dir = std::env::temp_dir().join(format!("tg_drop_flush_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropped.edges");
        {
            let mut sink = StreamingWriterSink::create(&path).unwrap();
            // few edges: far below BufWriter's default 8 KiB buffer, so
            // without the drop-flush nothing would reach the file
            sink.accept(0, 0, &[TemporalEdge::new(0, 1, 0)]);
            sink.accept(1, 0, &[TemporalEdge::new(1, 0, 1)]);
            assert_eq!(sink.n_written(), 2);
            // dropped here — no finish(), no into_inner()
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "0 1 0\n1 0 1\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exact_reader_rejects_trailing_tokens() {
        // a spliced line (missing newline between records) must not parse
        // as a single edge that silently drops the trailing tokens
        assert!(matches!(
            read_edge_list_exact("5 6 01 2 0\n".as_bytes(), 10, 5),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn merge_inserts_newline_for_unterminated_input() {
        let dir = std::env::temp_dir().join(format!("tg_merge_nl_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        let out = dir.join("merged.txt");
        std::fs::write(&a, "0 1 0").unwrap(); // no trailing newline
        std::fs::write(&b, "1 0 1\n").unwrap();
        merge_edge_lists(&[&a, &b], &out).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), "0 1 0\n1 0 1\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_concatenates_in_order() {
        let dir = std::env::temp_dir().join(format!("tg_merge_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        let out = dir.join("merged.txt");
        std::fs::write(&a, "0 1 0\n").unwrap();
        std::fs::write(&b, "1 0 1\n").unwrap();
        let bytes = merge_edge_lists(&[&a, &b], &out).unwrap();
        let merged = std::fs::read_to_string(&out).unwrap();
        assert_eq!(merged, "0 1 0\n1 0 1\n");
        assert_eq!(bytes as usize, merged.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
