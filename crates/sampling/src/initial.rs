//! Initial temporal-node sampling (paper §IV-B, Eq. 2).
//!
//! The sampling population is the set of occurring temporal nodes `(v, t)`
//! (node with at least one incident edge at `t`). The paper weights the
//! draw by temporal degree — `P(u^t) = deg(u^t) / Σ deg` — so training
//! prioritises the local structure of representative nodes; the TGAE-n
//! ablation switches to a uniform draw.

use rand::Rng;
use tg_graph::source::{EdgeSource, InMemorySource};
use tg_graph::{NodeId, TemporalGraph, Time};

/// Pre-computed sampling population with cumulative weights for O(log n)
/// categorical draws.
pub struct InitialNodeSampler {
    population: Vec<(NodeId, Time)>,
    /// Cumulative degree weights (degree-weighted mode).
    cum_weights: Vec<f64>,
    degree_weighted: bool,
}

impl InitialNodeSampler {
    /// Build the sampler from a temporal graph. Equivalent to streaming
    /// the graph through [`InitialNodeSampler::from_source`] (the two
    /// constructions are regression-tested to produce bit-identical
    /// samplers).
    pub fn new(g: &TemporalGraph, degree_weighted: bool) -> Self {
        match Self::from_source(&mut InMemorySource::new(g), degree_weighted) {
            Ok(s) => s,
            Err(e) => match e {}, // Infallible
        }
    }

    /// Build the sampler by streaming per-timestamp chunks from any
    /// [`EdgeSource`] — the ingest-side twin of
    /// [`InitialNodeSampler::new`]. Because chunks arrive grouped by
    /// timestamp, temporal degrees accumulate in a per-timestamp map that
    /// is drained as each timestamp closes, so the transient working set
    /// is `O(nodes active at one timestamp)` rather than `O(all temporal
    /// nodes)`; only the final population (which the sampler must hold
    /// anyway) grows with the graph.
    pub fn from_source<S: EdgeSource>(
        source: &mut S,
        degree_weighted: bool,
    ) -> Result<Self, S::Error> {
        use std::collections::HashMap;
        let mut nodes: Vec<(NodeId, Time, usize)> = Vec::new();
        // lint: allow(determinism) — per-timestamp scratch: drained into
        // `nodes`, which is sort_unstable'd before anything reads it
        let mut open: HashMap<NodeId, usize> = HashMap::new();
        let mut open_t: Time = 0;
        let close =
            // lint: allow(determinism) — drain order vanishes in the
            // caller's sort_unstable over `nodes`
            |open: &mut HashMap<NodeId, usize>, t: Time, nodes: &mut Vec<(NodeId, Time, usize)>| {
                nodes.extend(open.drain().map(|(v, d)| (v, t, d)));
            };
        source.for_each_chunk(
            tg_graph::source::DEFAULT_CHUNK_EDGES,
            &mut |t, _c, edges| {
                if t != open_t {
                    close(&mut open, open_t, &mut nodes);
                    open_t = t;
                }
                for e in edges {
                    *open.entry(e.u).or_insert(0) += 1;
                    *open.entry(e.v).or_insert(0) += 1;
                }
            },
        )?;
        close(&mut open, open_t, &mut nodes);
        // Same global order as `TemporalGraph::temporal_nodes` (sorted by
        // `(v, t)`), so the cumulative-weight accumulation below visits
        // entries in the identical sequence and the resulting sampler is
        // bit-identical to the in-memory construction.
        nodes.sort_unstable();
        let mut population = Vec::with_capacity(nodes.len());
        let mut cum_weights = Vec::with_capacity(nodes.len());
        let mut acc = 0.0f64;
        for (v, t, d) in nodes {
            population.push((v, t));
            acc += d as f64;
            cum_weights.push(acc);
        }
        Ok(InitialNodeSampler {
            population,
            cum_weights,
            degree_weighted,
        })
    }

    /// Number of occurring temporal nodes.
    pub fn population_size(&self) -> usize {
        self.population.len()
    }

    /// The full population (sorted by `(v, t)`).
    pub fn population(&self) -> &[(NodeId, Time)] {
        &self.population
    }

    /// Draw one temporal node.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, Time) {
        assert!(!self.population.is_empty(), "empty sampling population");
        if self.degree_weighted {
            let total = *self.cum_weights.last().expect("non-empty");
            let u = rng.gen::<f64>() * total;
            let idx = self
                .cum_weights
                .partition_point(|&c| c < u)
                .min(self.population.len() - 1);
            self.population[idx]
        } else {
            self.population[rng.gen_range(0..self.population.len())]
        }
    }

    /// Draw `n_s` temporal nodes with replacement, then deduplicate —
    /// the per-epoch initial set `~V_s` (duplicates would be redundant
    /// slots in the merged computation graph).
    pub fn sample_batch<R: Rng + ?Sized>(&self, n_s: usize, rng: &mut R) -> Vec<(NodeId, Time)> {
        let mut batch: Vec<(NodeId, Time)> = (0..n_s).map(|_| self.sample_one(rng)).collect();
        batch.sort_unstable();
        batch.dedup();
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::TemporalEdge;

    /// Hub graph: node 0 touches everything at t=0; plus one remote edge.
    fn hub_graph() -> TemporalGraph {
        let mut edges: Vec<TemporalEdge> = (1..=10).map(|v| TemporalEdge::new(0, v, 0)).collect();
        edges.push(TemporalEdge::new(11, 12, 1));
        TemporalGraph::from_edges(13, 2, edges)
    }

    #[test]
    fn population_counts_occurrences() {
        let s = InitialNodeSampler::new(&hub_graph(), true);
        // t=0: nodes 0..=10 occur (11); t=1: nodes 11,12 (2)
        assert_eq!(s.population_size(), 13);
    }

    #[test]
    fn degree_weighting_prefers_hub() {
        let g = hub_graph();
        let s = InitialNodeSampler::new(&g, true);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut hub_hits = 0;
        let n = 5000;
        for _ in 0..n {
            let (v, t) = s.sample_one(&mut rng);
            if v == 0 && t == 0 {
                hub_hits += 1;
            }
        }
        // hub has degree 10 of total degree 2*11=22 -> expect ~45%
        let frac = hub_hits as f64 / n as f64;
        assert!((0.35..0.55).contains(&frac), "hub fraction {frac}");
    }

    #[test]
    fn uniform_mode_is_flat() {
        let g = hub_graph();
        let s = InitialNodeSampler::new(&g, false);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut hub_hits = 0;
        let n = 5000;
        for _ in 0..n {
            let (v, t) = s.sample_one(&mut rng);
            if v == 0 && t == 0 {
                hub_hits += 1;
            }
        }
        let frac = hub_hits as f64 / n as f64;
        // 1 of 13 population entries ~ 7.7%
        assert!((0.04..0.12).contains(&frac), "hub fraction {frac}");
    }

    #[test]
    fn batch_dedups() {
        let g = hub_graph();
        let s = InitialNodeSampler::new(&g, true);
        let mut rng = SmallRng::seed_from_u64(2);
        let batch = s.sample_batch(200, &mut rng);
        assert!(batch.len() <= 13);
        let mut sorted = batch.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), batch.len());
    }

    #[test]
    fn from_source_is_bit_identical_to_new() {
        // The streamed (per-timestamp chunk) construction must reproduce
        // the in-memory one exactly: same population, and — because the
        // cumulative f64 weights accumulate in the same order — the same
        // draws from the same RNG stream.
        let g = hub_graph();
        for degree_weighted in [true, false] {
            let a = InitialNodeSampler::new(&g, degree_weighted);
            let b = InitialNodeSampler::from_source(&mut InMemorySource::new(&g), degree_weighted)
                .unwrap();
            assert_eq!(a.population(), b.population());
            let mut rng_a = SmallRng::seed_from_u64(11);
            let mut rng_b = SmallRng::seed_from_u64(11);
            assert_eq!(
                a.sample_batch(300, &mut rng_a),
                b.sample_batch(300, &mut rng_b)
            );
        }
    }

    #[test]
    fn batch_only_contains_occurring_nodes() {
        let g = hub_graph();
        let s = InitialNodeSampler::new(&g, true);
        let mut rng = SmallRng::seed_from_u64(3);
        for (v, t) in s.sample_batch(50, &mut rng) {
            assert!(
                g.temporal_degree(v, t) > 0,
                "({v},{t}) has no incident edges"
            );
        }
    }
}
