//! Analytic cost model for the paper's complexity claims (§I, §IV):
//!
//! - training steps: `O(nT / n_s)` after bipartite merging (vs `O(nT)`
//!   per-ego training);
//! - training space: `O(n (T + n_s))`;
//! - per-batch computation-graph size bound: with truncation `th` and
//!   radius `k`, at most `n_s · Σ_{i=0..k} (th+1)^i` slots.
//!
//! These estimates power the Fig. 6 discussion and are *checked against
//! the real sampler* in the tests — the merged computation graph must
//! never exceed the analytic slot bound.

use crate::config::SamplerConfig;

/// Predicted number of optimisation steps for one full pass over all `nT`
/// temporal nodes with batches of `n_s` centers (the paper's
/// `O(nT / n_s)` claim).
pub fn predicted_steps_per_pass(n: usize, t: usize, n_s: usize) -> usize {
    (n * t).div_ceil(n_s.max(1))
}

/// Predicted steps without bipartite merging (one ego-graph per step).
pub fn predicted_steps_unmerged(n: usize, t: usize) -> usize {
    n * t
}

/// Upper bound on slots in one merged computation graph: a (th+1)-ary tree
/// of depth k per center, before cross-ego deduplication.
pub fn slot_upper_bound(cfg: &SamplerConfig, n_s: usize) -> usize {
    let branch = cfg.threshold.saturating_add(1);
    let mut per_center = 0usize;
    let mut level = 1usize;
    for _ in 0..=cfg.k {
        per_center = per_center.saturating_add(level);
        level = level.saturating_mul(branch);
    }
    n_s.saturating_mul(per_center)
}

/// Predicted training-space scaling (paper: `O(n (T + n_s))` scalars):
/// embedding tables `n·d + T·d` plus per-batch activations `∝ slots`.
pub fn predicted_space_scalars(n: usize, t: usize, n_s: usize, d: usize) -> usize {
    n * d + t * d + n_s * d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::{TemporalEdge, TemporalGraph};

    #[test]
    fn steps_math() {
        assert_eq!(predicted_steps_per_pass(100, 10, 64), 16); // ceil(1000/64)
        assert_eq!(predicted_steps_unmerged(100, 10), 1000);
        // the merging win is exactly n_s
        assert!(predicted_steps_unmerged(100, 10) / predicted_steps_per_pass(100, 10, 64) >= 62);
    }

    #[test]
    fn slot_bound_formula() {
        let cfg = SamplerConfig {
            k: 2,
            threshold: 3,
            time_window: 1,
            degree_weighted: true,
        };
        // per center: 1 + 4 + 16 = 21
        assert_eq!(slot_upper_bound(&cfg, 2), 42);
    }

    #[test]
    fn real_computation_graphs_respect_the_bound() {
        // dense-ish random graph; the sampler must stay under the analytic
        // tree bound for every seed
        let mut edges = Vec::new();
        for t in 0..4u32 {
            for u in 0..30u32 {
                for dv in 1..6u32 {
                    edges.push(TemporalEdge::new(u, (u + dv) % 30, t));
                }
            }
        }
        let g = TemporalGraph::from_edges(30, 4, edges);
        let cfg = SamplerConfig {
            k: 2,
            threshold: 4,
            time_window: 1,
            degree_weighted: true,
        };
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let centers: Vec<(u32, u32)> = (0..8).map(|i| (i * 3 % 30, i % 4)).collect();
            let cg = crate::bipartite::ComputationGraph::build(&g, &centers, &cfg, &mut rng);
            let bound = slot_upper_bound(&cfg, centers.len());
            assert!(
                cg.n_slots() <= bound,
                "seed {seed}: {} slots exceeds bound {bound}",
                cg.n_slots()
            );
        }
    }

    #[test]
    fn space_model_is_linear_in_each_argument() {
        let base = predicted_space_scalars(1000, 10, 64, 32);
        assert_eq!(predicted_space_scalars(2000, 10, 64, 32) - base, 1000 * 32);
        assert_eq!(predicted_space_scalars(1000, 20, 64, 32) - base, 10 * 32);
    }

    #[test]
    fn saturating_bounds_do_not_overflow() {
        let cfg = SamplerConfig {
            k: 8,
            threshold: usize::MAX,
            time_window: 1,
            degree_weighted: true,
        };
        assert_eq!(slot_upper_bound(&cfg, 1000), usize::MAX);
    }
}
