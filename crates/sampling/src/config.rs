//! Sampler configuration shared by the ego-graph sampler and the TGAE
//! trainer.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the temporal ego-graph sampler (paper §IV-B).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Ego-graph radius `k` — also the number of stacked TGAT layers.
    pub k: usize,
    /// Neighbor truncation threshold `th` (Algorithm 1). Values `< 2`
    /// degenerate the ego-graph into a temporal random walk (the TGAE-g
    /// ablation variant, §IV-F).
    pub threshold: usize,
    /// Temporal neighborhood window `t_N` (Def. 3): neighbors are edge
    /// endpoints within `|t - t'| <= t_N`.
    pub time_window: u32,
    /// Degree-weighted initial node sampling (Eq. 2). `false` switches to
    /// uniform sampling (the TGAE-n ablation variant).
    pub degree_weighted: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            k: 2,
            threshold: 20,
            time_window: 1,
            degree_weighted: true,
        }
    }
}

impl SamplerConfig {
    /// The random-walk degenerate configuration (TGAE-g): `th = 1`.
    pub fn random_walk_variant(mut self) -> Self {
        self.threshold = 1;
        self
    }

    /// The no-truncation configuration (TGAE-t): unbounded neighbors.
    pub fn no_truncation_variant(mut self) -> Self {
        self.threshold = usize::MAX;
        self
    }

    /// The uniform initial-sampling configuration (TGAE-n).
    pub fn uniform_sampling_variant(mut self) -> Self {
        self.degree_weighted = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        let c = SamplerConfig::default();
        assert_eq!(c.k, 2);
        assert_eq!(c.threshold, 20);
        assert!(c.degree_weighted);
    }

    #[test]
    fn variants_toggle_the_right_knob() {
        let c = SamplerConfig::default();
        assert_eq!(c.random_walk_variant().threshold, 1);
        assert_eq!(c.no_truncation_variant().threshold, usize::MAX);
        assert!(!c.uniform_sampling_variant().degree_weighted);
        // untouched fields preserved
        assert_eq!(c.random_walk_variant().k, c.k);
    }
}
