//! `tg-sampling`: the TGAE paper's ego-graph sampling stack (§IV-B/C).
//!
//! - [`initial::InitialNodeSampler`] — degree-weighted (Eq. 2) or uniform
//!   sampling of representative temporal nodes;
//! - [`ego`] — Algorithm 1: `NodeSampling` truncation and recursive
//!   `k-EgoGraph` sampling over temporal neighborhoods (Def. 3);
//! - [`bipartite::ComputationGraph`] — the merged k-bipartite computation
//!   graphs of Fig. 4 that batch all per-epoch ego-graphs into `k`
//!   attention layers;
//! - [`config::SamplerConfig`] — shared knobs, including the ablation
//!   variants (random-walk `th<2`, no-truncation, uniform sampling).

pub mod bipartite;
pub mod complexity;
pub mod config;
pub mod ego;
pub mod initial;

pub use bipartite::{BipartiteLayer, ComputationGraph};
pub use complexity::{
    predicted_space_scalars, predicted_steps_per_pass, predicted_steps_unmerged, slot_upper_bound,
};
pub use config::SamplerConfig;
pub use ego::{node_sampling, sample_ego_graph, temporal_neighbor_occurrences, EgoGraph};
pub use initial::InitialNodeSampler;
