//! Merged k-bipartite computation graphs (paper §IV-C, Fig. 4).
//!
//! All per-epoch ego-graphs are merged into `k` bipartite layers:
//! `levels[0]` holds the (deduplicated) center slots `S_0`, `levels[i]`
//! holds the order-`i` neighbor slots `S_i`. Layer `i` carries the edges
//! from sources in `S_{i+1}` to targets in `S_i`; the TGAT encoder runs one
//! batched attention step per layer, from the deepest level inwards. This
//! is exactly the paper's GPU-friendly batching — it reduces training steps
//! from `O(nT)` to `O(nT / n_s)` — executed here with CPU-thread kernels.
//!
//! Per the paper, every target gets a self-loop ("we added self-loops to
//! all temporal nodes to pass messages to themselves"), which also
//! guarantees each attention segment is non-empty, and repeated temporal
//! nodes within a level are stored once (the truncation/dedup mechanism of
//! §IV-C).

use crate::config::SamplerConfig;
use crate::ego::{node_sampling, temporal_neighbor_occurrences};
use rand::Rng;
use std::collections::HashMap;
use tg_graph::{NodeId, TemporalGraph, Time};

/// One bipartite message-passing layer: edges from level `i+1` (sources)
/// to level `i` (targets).
#[derive(Clone, Debug)]
pub struct BipartiteLayer {
    /// Per-edge source slot (index into `levels[i+1]`).
    pub src: Vec<u32>,
    /// Per-edge target slot (index into `levels[i]`); doubles as the
    /// segment id for the attention softmax.
    pub dst: Vec<u32>,
    /// For each target slot, the source-level slot holding the *same*
    /// temporal node (its self-loop image) — used for the attention
    /// query term and for decode initialisation.
    pub self_idx: Vec<u32>,
    /// Number of target slots (`levels[i].len()`).
    pub n_targets: usize,
    /// Number of source slots (`levels[i+1].len()`).
    pub n_sources: usize,
}

impl BipartiteLayer {
    /// Number of message edges (including self-loops).
    pub fn n_edges(&self) -> usize {
        self.src.len()
    }
}

/// The merged computation graph for one training batch.
#[derive(Clone, Debug)]
pub struct ComputationGraph {
    /// `levels[0]` = centers, ..., `levels[k]` = outermost neighbors.
    pub levels: Vec<Vec<(NodeId, Time)>>,
    /// `layers[i]`: messages `levels[i+1] -> levels[i]`; length `k`.
    pub layers: Vec<BipartiteLayer>,
}

impl ComputationGraph {
    /// Build from a batch of center temporal nodes.
    pub fn build<R: Rng + ?Sized>(
        g: &TemporalGraph,
        centers: &[(NodeId, Time)],
        cfg: &SamplerConfig,
        rng: &mut R,
    ) -> Self {
        assert!(
            !centers.is_empty(),
            "computation graph needs at least one center"
        );
        let mut centers_dedup = centers.to_vec();
        centers_dedup.sort_unstable();
        centers_dedup.dedup();

        let mut levels: Vec<Vec<(NodeId, Time)>> = vec![centers_dedup];
        let mut layers: Vec<BipartiteLayer> = Vec::with_capacity(cfg.k);

        for i in 0..cfg.k {
            let targets = levels[i].clone();
            let mut src_level: Vec<(NodeId, Time)> = Vec::new();
            // lint: allow(determinism) — intern index read by key only;
            // `src_level` order comes from deterministic push order
            let mut index: HashMap<(NodeId, Time), u32> = HashMap::new();
            let mut intern = |occ: (NodeId, Time), src_level: &mut Vec<(NodeId, Time)>| -> u32 {
                *index.entry(occ).or_insert_with(|| {
                    src_level.push(occ);
                    src_level.len() as u32 - 1
                })
            };
            let mut src = Vec::new();
            let mut dst = Vec::new();
            let mut self_idx = Vec::with_capacity(targets.len());
            for (j, &(v, t)) in targets.iter().enumerate() {
                // self-loop first
                let self_slot = intern((v, t), &mut src_level);
                self_idx.push(self_slot);
                src.push(self_slot);
                dst.push(j as u32);
                // sampled temporal neighbors
                let nbrs = temporal_neighbor_occurrences(g, v, t, cfg.time_window);
                for occ in node_sampling(&nbrs, cfg.threshold, rng) {
                    let slot = intern(occ, &mut src_level);
                    src.push(slot);
                    dst.push(j as u32);
                }
            }
            layers.push(BipartiteLayer {
                src,
                dst,
                self_idx,
                n_targets: targets.len(),
                n_sources: src_level.len(),
            });
            levels.push(src_level);
        }

        ComputationGraph { levels, layers }
    }

    /// Ego radius `k` (number of layers).
    pub fn k(&self) -> usize {
        self.layers.len()
    }

    /// Center slots (level 0).
    pub fn centers(&self) -> &[(NodeId, Time)] {
        &self.levels[0]
    }

    /// Flatten all levels into one slot list, returning `(slots, offsets)`
    /// where level `i` occupies `offsets[i]..offsets[i+1]`. Used by the
    /// decoder, which emits one probability row per slot.
    pub fn all_slots(&self) -> (Vec<(NodeId, Time)>, Vec<usize>) {
        let mut slots = Vec::new();
        let mut offsets = Vec::with_capacity(self.levels.len() + 1);
        offsets.push(0);
        for level in &self.levels {
            slots.extend_from_slice(level);
            offsets.push(slots.len());
        }
        (slots, offsets)
    }

    /// Total number of slots across levels.
    pub fn n_slots(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Total number of message edges across layers.
    pub fn n_edges(&self) -> usize {
        self.layers.iter().map(|l| l.n_edges()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::TemporalEdge;

    fn triangle_graph() -> TemporalGraph {
        TemporalGraph::from_edges(
            3,
            2,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 0),
                TemporalEdge::new(2, 0, 1),
            ],
        )
    }

    fn cfg(k: usize, th: usize) -> SamplerConfig {
        SamplerConfig {
            k,
            threshold: th,
            time_window: 1,
            degree_weighted: true,
        }
    }

    #[test]
    fn structure_invariants() {
        let g = triangle_graph();
        let mut rng = SmallRng::seed_from_u64(0);
        let centers = vec![(0u32, 0u32), (1, 0)];
        let cg = ComputationGraph::build(&g, &centers, &cfg(2, 10), &mut rng);
        assert_eq!(cg.k(), 2);
        assert_eq!(cg.levels.len(), 3);
        assert_eq!(cg.centers(), &centers[..]);
        for (i, layer) in cg.layers.iter().enumerate() {
            assert_eq!(layer.n_targets, cg.levels[i].len());
            assert_eq!(layer.n_sources, cg.levels[i + 1].len());
            assert_eq!(layer.src.len(), layer.dst.len());
            // every edge endpoint in range
            assert!(layer.src.iter().all(|&s| (s as usize) < layer.n_sources));
            assert!(layer.dst.iter().all(|&d| (d as usize) < layer.n_targets));
            // self_idx points at the same temporal node one level up
            for (j, &si) in layer.self_idx.iter().enumerate() {
                assert_eq!(cg.levels[i][j], cg.levels[i + 1][si as usize]);
            }
            // every target has at least its self-loop
            for j in 0..layer.n_targets as u32 {
                assert!(layer.dst.contains(&j), "target {j} without incoming edge");
            }
        }
    }

    #[test]
    fn duplicate_centers_are_merged() {
        let g = triangle_graph();
        let mut rng = SmallRng::seed_from_u64(1);
        let cg = ComputationGraph::build(&g, &[(0, 0), (0, 0), (1, 0)], &cfg(1, 10), &mut rng);
        assert_eq!(cg.centers().len(), 2);
    }

    #[test]
    fn levels_dedup_repeated_nodes() {
        // all centers share the same neighbors; level 1 must not contain dups
        let g = triangle_graph();
        let mut rng = SmallRng::seed_from_u64(2);
        let cg = ComputationGraph::build(&g, &[(0, 0), (1, 0), (2, 0)], &cfg(1, 10), &mut rng);
        let mut l1 = cg.levels[1].clone();
        let before = l1.len();
        l1.sort_unstable();
        l1.dedup();
        assert_eq!(before, l1.len(), "level 1 contains duplicate slots");
    }

    #[test]
    fn truncation_bounds_edges_per_target() {
        // star with 50 leaves; threshold 4 -> <= 5 incoming edges per target
        let edges: Vec<TemporalEdge> = (1..=50).map(|v| TemporalEdge::new(0, v, 0)).collect();
        let g = TemporalGraph::from_edges(51, 1, edges);
        let mut rng = SmallRng::seed_from_u64(3);
        let cg = ComputationGraph::build(&g, &[(0, 0)], &cfg(1, 4), &mut rng);
        let layer = &cg.layers[0];
        assert!(layer.n_edges() <= 5, "{} edges", layer.n_edges());
    }

    #[test]
    fn all_slots_flattening() {
        let g = triangle_graph();
        let mut rng = SmallRng::seed_from_u64(4);
        let cg = ComputationGraph::build(&g, &[(0, 0)], &cfg(2, 10), &mut rng);
        let (slots, offsets) = cg.all_slots();
        assert_eq!(slots.len(), cg.n_slots());
        assert_eq!(offsets.len(), cg.levels.len() + 1);
        assert_eq!(*offsets.last().unwrap(), slots.len());
        assert_eq!(&slots[..cg.levels[0].len()], cg.centers());
    }

    #[test]
    fn isolated_center_still_has_self_loop() {
        let g = TemporalGraph::from_edges(3, 2, vec![TemporalEdge::new(0, 1, 0)]);
        let mut rng = SmallRng::seed_from_u64(5);
        let cg = ComputationGraph::build(&g, &[(2, 1)], &cfg(2, 10), &mut rng);
        for layer in &cg.layers {
            assert_eq!(layer.n_edges(), 1); // just the self-loop
        }
    }
}
