//! k-radius temporal ego-graph sampling — Algorithm 1 of the paper.
//!
//! `NodeSampling` truncates a neighbor set to at most `th` nodes by
//! sampling with replacement (so dense hubs don't explode the ego-graph);
//! `k-EgoGraph` recursively expands the temporal neighborhood around a
//! center temporal node. With `th < 2` the ego-graph degenerates into a
//! temporal random walk (the TGAE-g variant).

use crate::config::SamplerConfig;
use rand::Rng;
use tg_graph::{NodeId, TemporalGraph, Time};

/// The temporal neighborhood `N(v^t)` of Def. 3 with `d_N = 1`: occurrences
/// `(u, t')` adjacent to `v` (either direction) with `|t - t'| <= t_n`,
/// deduplicated and sorted.
pub fn temporal_neighbor_occurrences(
    g: &TemporalGraph,
    v: NodeId,
    t: Time,
    t_n: Time,
) -> Vec<(NodeId, Time)> {
    let lo = t.saturating_sub(t_n);
    let hi = ((t as u64 + t_n as u64).min(g.n_timestamps() as u64 - 1)) as Time;
    let mut out: Vec<(NodeId, Time)> = Vec::new();
    for tt in lo..=hi {
        for u in g.out_neighbors_at(v, tt) {
            out.push((u, tt));
        }
        for u in g.in_neighbors_at(v, tt) {
            out.push((u, tt));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Algorithm 1's `NodeSampling`: keep the whole set when it fits under the
/// threshold, otherwise draw `threshold` samples with replacement and
/// deduplicate (yielding at most `threshold` distinct nodes).
pub fn node_sampling<R: Rng + ?Sized, T: Copy + Ord>(
    nodeset: &[T],
    threshold: usize,
    rng: &mut R,
) -> Vec<T> {
    if nodeset.len() <= threshold {
        return nodeset.to_vec();
    }
    let mut out: Vec<T> = (0..threshold)
        .map(|_| nodeset[rng.gen_range(0..nodeset.len())])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// A sampled k-radius temporal ego-graph: the sampling tree rooted at the
/// center, with per-node depth. Node 0 is always the center.
#[derive(Clone, Debug)]
pub struct EgoGraph {
    /// Temporal nodes, center first.
    pub nodes: Vec<(NodeId, Time)>,
    /// Depth (hop distance from the center along the sampling tree).
    pub depth: Vec<u8>,
    /// Sampling-tree edges `(parent_idx, child_idx)` into `nodes`.
    pub tree_edges: Vec<(u32, u32)>,
}

impl EgoGraph {
    /// Number of temporal nodes in the ego-graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the ego-graph has no nodes (never the case for sampled
    /// ego-graphs, which always contain their center).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The center temporal node.
    pub fn center(&self) -> (NodeId, Time) {
        self.nodes[0]
    }

    /// Maximum depth present.
    pub fn radius(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0) as usize
    }
}

/// Algorithm 1's `k-EgoGraph`: sample the ego-graph of `(v, t)` with radius
/// `cfg.k`, truncation `cfg.threshold`, and time window `cfg.time_window`.
/// Nodes reached by several tree paths are kept once (first depth wins).
pub fn sample_ego_graph<R: Rng + ?Sized>(
    g: &TemporalGraph,
    center: (NodeId, Time),
    cfg: &SamplerConfig,
    rng: &mut R,
) -> EgoGraph {
    let mut nodes = vec![center];
    let mut depth = vec![0u8];
    let mut tree_edges = Vec::new();
    // lint: allow(determinism) — dedup index read by key only; `nodes`
    // order comes from deterministic BFS push order
    let mut index: std::collections::HashMap<(NodeId, Time), u32> =
        std::collections::HashMap::new();
    index.insert(center, 0);

    let mut frontier: Vec<u32> = vec![0];
    for d in 1..=cfg.k {
        let mut next_frontier = Vec::new();
        for &pi in &frontier {
            let (pv, pt) = nodes[pi as usize];
            let nbrs = temporal_neighbor_occurrences(g, pv, pt, cfg.time_window);
            for occ in node_sampling(&nbrs, cfg.threshold, rng) {
                let slot = *index.entry(occ).or_insert_with(|| {
                    nodes.push(occ);
                    depth.push(d as u8);
                    next_frontier.push(nodes.len() as u32 - 1);
                    nodes.len() as u32 - 1
                });
                tree_edges.push((pi, slot));
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    EgoGraph {
        nodes,
        depth,
        tree_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::TemporalEdge;

    fn star_graph(leaves: usize) -> TemporalGraph {
        let edges: Vec<TemporalEdge> = (1..=leaves)
            .map(|v| TemporalEdge::new(0, v as u32, 0))
            .collect();
        TemporalGraph::from_edges(leaves + 1, 1, edges)
    }

    #[test]
    fn neighbor_occurrences_window() {
        let g = TemporalGraph::from_edges(
            3,
            4,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(2, 0, 2),
                TemporalEdge::new(0, 1, 3),
            ],
        );
        assert_eq!(temporal_neighbor_occurrences(&g, 0, 0, 0), vec![(1, 0)]);
        assert_eq!(
            temporal_neighbor_occurrences(&g, 0, 1, 1),
            vec![(1, 0), (2, 2)]
        );
        assert_eq!(
            temporal_neighbor_occurrences(&g, 0, 2, 1),
            vec![(1, 3), (2, 2)]
        );
    }

    #[test]
    fn node_sampling_under_threshold_keeps_all() {
        let mut rng = SmallRng::seed_from_u64(0);
        let set = vec![1, 2, 3];
        assert_eq!(node_sampling(&set, 5, &mut rng), set);
        assert_eq!(node_sampling(&set, 3, &mut rng), set);
    }

    #[test]
    fn node_sampling_truncates_to_threshold() {
        let mut rng = SmallRng::seed_from_u64(1);
        let set: Vec<u32> = (0..100).collect();
        for _ in 0..10 {
            let picked = node_sampling(&set, 7, &mut rng);
            assert!(picked.len() <= 7);
            assert!(!picked.is_empty());
            assert!(picked.iter().all(|x| set.contains(x)));
        }
    }

    #[test]
    fn ego_graph_of_star_center() {
        let g = star_graph(5);
        let cfg = SamplerConfig {
            k: 1,
            threshold: 100,
            time_window: 0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let ego = sample_ego_graph(&g, (0, 0), &cfg, &mut rng);
        assert_eq!(ego.center(), (0, 0));
        assert_eq!(ego.len(), 6); // center + 5 leaves
        assert_eq!(ego.radius(), 1);
        assert_eq!(ego.tree_edges.len(), 5);
    }

    #[test]
    fn ego_graph_radius_two_reaches_leaves_from_leaf() {
        let g = star_graph(5);
        let cfg = SamplerConfig {
            k: 2,
            threshold: 100,
            time_window: 0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        // center = leaf 1: depth 1 = hub, depth 2 = other leaves
        let ego = sample_ego_graph(&g, (1, 0), &cfg, &mut rng);
        assert_eq!(ego.len(), 6);
        assert_eq!(ego.radius(), 2);
        let hub_idx = ego.nodes.iter().position(|&(v, _)| v == 0).unwrap();
        assert_eq!(ego.depth[hub_idx], 1);
    }

    #[test]
    fn truncation_bounds_ego_size() {
        let g = star_graph(50);
        let cfg = SamplerConfig {
            k: 1,
            threshold: 5,
            time_window: 0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let ego = sample_ego_graph(&g, (0, 0), &cfg, &mut rng);
        assert!(ego.len() <= 6, "{}", ego.len());
    }

    #[test]
    fn random_walk_variant_is_a_chain() {
        // path graph: 0-1-2-3-4 all at t=0
        let edges: Vec<TemporalEdge> = (0..4).map(|i| TemporalEdge::new(i, i + 1, 0)).collect();
        let g = TemporalGraph::from_edges(5, 1, edges);
        let cfg = SamplerConfig {
            k: 3,
            threshold: 1,
            time_window: 0,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let ego = sample_ego_graph(&g, (0, 0), &cfg, &mut rng);
        // chain: every depth level has at most 1 new node
        for d in 1..=3u8 {
            assert!(
                ego.depth.iter().filter(|&&x| x == d).count() <= 1,
                "depth {d}"
            );
        }
    }

    #[test]
    fn isolated_center_yields_singleton() {
        let g = TemporalGraph::from_edges(3, 2, vec![TemporalEdge::new(0, 1, 0)]);
        let cfg = SamplerConfig::default();
        let mut rng = SmallRng::seed_from_u64(6);
        let ego = sample_ego_graph(&g, (2, 1), &cfg, &mut rng);
        assert_eq!(ego.len(), 1);
        assert_eq!(ego.tree_edges.len(), 0);
    }
}
