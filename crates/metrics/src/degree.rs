//! Degree-distribution comparison helpers (GraphRNN-style), complementing
//! the scalar Table III statistics: a normalised degree histogram and its
//! TV-kernel MMD. Used by the examples and available for extended
//! evaluation; the paper's own tables reduce degree structure to Mean
//! Degree and PLE.

use crate::mmd::mmd2_tv;
use tg_graph::Snapshot;

/// Normalised degree histogram of the undirected simple view, truncated/
/// padded to `max_degree + 1` buckets (the last bucket absorbs the tail).
pub fn degree_histogram(snap: &Snapshot, max_degree: usize) -> Vec<f64> {
    let adj = snap.undirected_adjacency();
    let mut hist = vec![0f64; max_degree + 1];
    for a in &adj {
        let d = a.len().min(max_degree);
        hist[d] += 1.0;
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        for h in hist.iter_mut() {
            *h /= total;
        }
    }
    hist
}

/// MMD² between the degree histograms of two snapshots (Gaussian-TV
/// kernel, Eq. 1 machinery).
pub fn degree_mmd(a: &Snapshot, b: &Snapshot, max_degree: usize, sigma: f64) -> f64 {
    let ha = degree_histogram(a, max_degree);
    let hb = degree_histogram(b, max_degree);
    mmd2_tv(&[ha], &[hb], sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Snapshot {
        let pairs: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        Snapshot::from_pairs(n as usize, &pairs, true)
    }

    fn star(n: u32) -> Snapshot {
        let pairs: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        Snapshot::from_pairs(n as usize, &pairs, true)
    }

    #[test]
    fn histogram_normalises_and_localises() {
        let h = degree_histogram(&ring(10), 5);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h[2], 1.0); // every ring node has degree 2
    }

    #[test]
    fn tail_bucket_absorbs() {
        let h = degree_histogram(&star(10), 3);
        // hub degree 9 clamps into bucket 3
        assert!((h[3] - 0.1).abs() < 1e-12);
        assert!((h[1] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn mmd_zero_for_identical_and_positive_for_different() {
        let r = ring(12);
        assert!(degree_mmd(&r, &ring(12), 8, 1.0) < 1e-12);
        let s = star(12);
        assert!(degree_mmd(&r, &s, 8, 1.0) > 0.01);
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let e = Snapshot::from_pairs(4, &[], true);
        let h = degree_histogram(&e, 4);
        assert_eq!(h[0], 1.0); // all nodes isolated
    }
}
