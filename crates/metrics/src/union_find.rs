//! Disjoint-set forest (union by size + path halving), used for connected
//! components (LCC and N-Component statistics of Table III).

/// Union-find over `0..n`.
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    n_components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            n_components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // path halving
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.n_components -= 1;
        true
    }

    /// Number of disjoint sets (isolated nodes count as singletons).
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Size of the largest set.
    pub fn largest_component(&mut self) -> usize {
        if self.parent.is_empty() {
            return 0;
        }
        let mut best = 0u32;
        for x in 0..self.parent.len() as u32 {
            let r = self.find(x);
            best = best.max(self.size[r as usize]);
        }
        best as usize
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_sets_are_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.n_components(), 5);
        assert_eq!(uf.largest_component(), 1);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn unions_merge_and_count() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.n_components(), 4);
        assert!(uf.union(0, 2));
        assert_eq!(uf.n_components(), 3);
        assert_eq!(uf.largest_component(), 4);
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.component_size(4), 1);
    }

    #[test]
    fn chain_union_all() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 0..n as u32 - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.n_components(), 1);
        assert_eq!(uf.largest_component(), n);
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert_eq!(uf.n_components(), 0);
        assert_eq!(uf.largest_component(), 0);
    }
}
