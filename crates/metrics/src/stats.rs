//! The seven graph statistics of Table III, computed on the undirected
//! simple view of a snapshot.
//!
//! | Metric        | Computation                                   |
//! |---------------|-----------------------------------------------|
//! | Mean Degree   | `E[d(v)]`                                     |
//! | Wedge Count   | `Σ_v C(d(v), 2)`                              |
//! | Claw Count    | `Σ_v C(d(v), 3)`                              |
//! | Triangle Count| `trace(A^3)/6` (counted combinatorially)      |
//! | LCC           | size of the largest connected component       |
//! | PLE           | `1 + n' (Σ_v ln(d(v)/d_min))^-1` (MLE)        |
//! | N-Component   | number of connected components                |

use crate::union_find::UnionFind;
use serde::{Deserialize, Serialize};
use tg_graph::Snapshot;

/// Which Table III statistic to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    MeanDegree,
    Lcc,
    WedgeCount,
    ClawCount,
    TriangleCount,
    Ple,
    NComponents,
}

impl MetricKind {
    /// All seven metrics in the paper's table order.
    pub const ALL: [MetricKind; 7] = [
        MetricKind::MeanDegree,
        MetricKind::Lcc,
        MetricKind::WedgeCount,
        MetricKind::ClawCount,
        MetricKind::TriangleCount,
        MetricKind::Ple,
        MetricKind::NComponents,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::MeanDegree => "Mean Degree",
            MetricKind::Lcc => "LCC",
            MetricKind::WedgeCount => "Wedge Count",
            MetricKind::ClawCount => "Claw Count",
            MetricKind::TriangleCount => "Triangle Count",
            MetricKind::Ple => "PLE",
            MetricKind::NComponents => "N-Components",
        }
    }

    /// Compute this statistic on a snapshot.
    pub fn compute(self, s: &Snapshot) -> f64 {
        let stats = GraphStats::compute(s);
        stats.get(self)
    }
}

/// All seven statistics computed in one pass over the snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    pub mean_degree: f64,
    pub lcc: f64,
    pub wedge_count: f64,
    pub claw_count: f64,
    pub triangle_count: f64,
    pub ple: f64,
    pub n_components: f64,
}

impl GraphStats {
    /// Compute every Table III statistic for one snapshot.
    pub fn compute(s: &Snapshot) -> GraphStats {
        let adj = s.undirected_adjacency();
        let n = s.n_nodes();
        let degrees: Vec<usize> = adj.iter().map(|a| a.len()).collect();

        let deg_sum: usize = degrees.iter().sum();
        let mean_degree = if n == 0 {
            0.0
        } else {
            deg_sum as f64 / n as f64
        };

        let mut wedge = 0.0f64;
        let mut claw = 0.0f64;
        for &d in &degrees {
            let d = d as f64;
            wedge += d * (d - 1.0) / 2.0;
            claw += d * (d - 1.0) * (d - 2.0) / 6.0;
        }

        let triangle_count = count_triangles(&adj) as f64;

        let mut uf = UnionFind::new(n);
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                if (v as usize) > u {
                    uf.union(u as u32, v);
                }
            }
        }
        let lcc = uf.largest_component() as f64;
        let n_components = uf.n_components() as f64;

        let ple = power_law_exponent(&degrees);

        GraphStats {
            mean_degree,
            lcc,
            wedge_count: wedge,
            claw_count: claw,
            triangle_count,
            ple,
            n_components,
        }
    }

    /// Select one statistic by kind.
    pub fn get(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::MeanDegree => self.mean_degree,
            MetricKind::Lcc => self.lcc,
            MetricKind::WedgeCount => self.wedge_count,
            MetricKind::ClawCount => self.claw_count,
            MetricKind::TriangleCount => self.triangle_count,
            MetricKind::Ple => self.ple,
            MetricKind::NComponents => self.n_components,
        }
    }

    /// All seven values in [`MetricKind::ALL`] order.
    pub fn as_array(&self) -> [f64; 7] {
        [
            self.mean_degree,
            self.lcc,
            self.wedge_count,
            self.claw_count,
            self.triangle_count,
            self.ple,
            self.n_components,
        ]
    }
}

/// Exact triangle count on a sorted undirected adjacency (each triangle
/// counted once). Classic edge-iterator with sorted-intersection.
pub fn count_triangles(adj: &[Vec<u32>]) -> u64 {
    let mut count = 0u64;
    for (u, nbrs) in adj.iter().enumerate() {
        let u = u as u32;
        for &v in nbrs {
            if v <= u {
                continue;
            }
            // count w > v adjacent to both u and v
            count += intersect_above(&adj[u as usize], &adj[v as usize], v);
        }
    }
    count
}

/// Count common elements of two sorted lists strictly greater than `floor`.
fn intersect_above(a: &[u32], b: &[u32], floor: u32) -> u64 {
    let mut i = a.partition_point(|&x| x <= floor);
    let mut j = b.partition_point(|&x| x <= floor);
    let mut c = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Maximum-likelihood power-law exponent over positive-degree nodes
/// (Table III): `1 + n' / Σ ln(d / d_min)`.
pub fn power_law_exponent(degrees: &[usize]) -> f64 {
    let positive: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d > 0)
        .map(|&d| d as f64)
        .collect();
    if positive.is_empty() {
        return 1.0;
    }
    let d_min = positive.iter().cloned().fold(f64::INFINITY, f64::min);
    let log_sum: f64 = positive.iter().map(|&d| (d / d_min).ln()).sum();
    if log_sum <= 1e-12 {
        // degenerate (all degrees equal): return a large-but-finite exponent
        return 1.0 + positive.len() as f64 / 1e-12_f64.max(log_sum);
    }
    1.0 + positive.len() as f64 / log_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::Snapshot;

    /// K4: every pair connected.
    fn k4() -> Snapshot {
        let mut pairs = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                pairs.push((u, v));
            }
        }
        Snapshot::from_pairs(4, &pairs, true)
    }

    /// Path 0-1-2-3 plus isolated node 4.
    fn path_plus_isolate() -> Snapshot {
        Snapshot::from_pairs(5, &[(0, 1), (1, 2), (2, 3)], true)
    }

    #[test]
    fn k4_statistics() {
        let s = GraphStats::compute(&k4());
        assert_eq!(s.mean_degree, 3.0);
        assert_eq!(s.wedge_count, 4.0 * 3.0); // C(3,2)=3 per node
        assert_eq!(s.claw_count, 4.0); // C(3,3)=1 per node
        assert_eq!(s.triangle_count, 4.0); // C(4,3)
        assert_eq!(s.lcc, 4.0);
        assert_eq!(s.n_components, 1.0);
    }

    #[test]
    fn path_statistics() {
        let s = GraphStats::compute(&path_plus_isolate());
        assert!((s.mean_degree - 6.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.wedge_count, 2.0); // two middle nodes with d=2
        assert_eq!(s.claw_count, 0.0);
        assert_eq!(s.triangle_count, 0.0);
        assert_eq!(s.lcc, 4.0);
        assert_eq!(s.n_components, 2.0); // path + isolate
    }

    #[test]
    fn triangle_count_on_two_sharing_edge() {
        // triangles {0,1,2} and {0,1,3}
        let s = Snapshot::from_pairs(4, &[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3)], true);
        assert_eq!(GraphStats::compute(&s).triangle_count, 2.0);
    }

    #[test]
    fn triangle_count_ignores_direction_and_multiplicity() {
        let s = Snapshot::from_pairs(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (0, 2)], false);
        assert_eq!(GraphStats::compute(&s).triangle_count, 1.0);
    }

    #[test]
    fn ple_star_vs_regular() {
        // star: one hub degree n-1, leaves degree 1 -> low exponent;
        // near-regular ring -> degenerate/huge exponent.
        let star: Vec<(u32, u32)> = (1..20u32).map(|v| (0, v)).collect();
        let s_star = Snapshot::from_pairs(20, &star, true);
        let ring: Vec<(u32, u32)> = (0..20u32).map(|v| (v, (v + 1) % 20)).collect();
        let s_ring = Snapshot::from_pairs(20, &ring, true);
        let p_star = GraphStats::compute(&s_star).ple;
        let p_ring = GraphStats::compute(&s_ring).ple;
        assert!(p_star < p_ring, "star {p_star} ring {p_ring}");
        assert!(p_star > 1.0);
    }

    #[test]
    fn metric_kind_dispatch_matches_struct() {
        let snap = k4();
        let stats = GraphStats::compute(&snap);
        for (k, v) in MetricKind::ALL.iter().zip(stats.as_array()) {
            assert_eq!(k.compute(&snap), v, "{}", k.name());
        }
    }

    #[test]
    fn empty_graph_is_safe() {
        let s = Snapshot::from_pairs(0, &[], true);
        let stats = GraphStats::compute(&s);
        assert_eq!(stats.mean_degree, 0.0);
        assert_eq!(stats.n_components, 0.0);
    }
}
