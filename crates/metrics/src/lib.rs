//! `tg-metrics`: the TGAE paper's evaluation stack.
//!
//! - [`stats`] — the seven Table III graph statistics ([`stats::MetricKind`],
//!   [`stats::GraphStats`]) computed on undirected simple snapshot views;
//! - [`harness`] — the Eq. 10 comparison harness producing the `f_avg`
//!   (Table V) and `f_med` (Table IV) scores, plus the per-timestamp metric
//!   series behind Figure 5;
//! - [`motifs`] — the δ-temporal motif census over all 36 two/three-node
//!   three-edge motif classes (reference \[43\] of the paper);
//! - [`mmd`] — Gaussian-kernel total-variation MMD (Eq. 1) used by Table VI;
//! - [`union_find`] — disjoint sets for component statistics.

pub mod degree;
pub mod harness;
pub mod mmd;
pub mod motifs;
pub mod stats;
pub mod union_find;

pub use degree::{degree_histogram, degree_mmd};
pub use harness::{evaluate, metric_timeseries, relative_error, MetricScore, MetricSeries};
pub use mmd::{gaussian_kernel, mmd2_single, mmd2_tv, tv_distance};
pub use motifs::{
    census_per_chunk, census_per_chunk_sampled, count_motifs, count_motifs_sampled, MotifCensus,
    N_MOTIFS,
};
pub use stats::{GraphStats, MetricKind};
pub use union_find::UnionFind;
