//! δ-temporal motif census: all 2- and 3-node, 3-edge temporal motifs
//! (Paranjape, Benson & Leskovec, WSDM'17 — the paper's reference \[43\]).
//!
//! A motif instance is an ordered triple of edges `(e1, e2, e3)` with
//! non-decreasing timestamps (ties broken by edge index), spanning at most
//! three distinct nodes, whose time span satisfies `t3 - t1 <= δ`.
//! Canonicalising node labels by first appearance (first edge is always
//! `0 -> 1`) yields exactly **36 motif classes** — the 6x6 grid of the
//! reference paper: 6 choices for the second edge times 6 for the third.
//!
//! Two counters are provided:
//! - [`count_motifs`] — exact, adjacency-driven: for each anchor edge it
//!   only touches window edges incident to the anchor's endpoints.
//! - [`count_motifs_sampled`] — anchors a random subset of edges and
//!   rescales; an unbiased estimator of the census used on large/bursty
//!   graphs where the exact count is not worth the time.
//!
//! The brute-force reference enumerator lives in the test module and
//! cross-validates the adjacency-driven counter on random graphs.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tg_graph::TemporalGraph;

/// Number of distinct 2-/3-node 3-edge motif classes.
pub const N_MOTIFS: usize = 36;

/// Edge-label codes: pairs over labels {0,1,2}, excluding self-loops, in a
/// fixed canonical order.
const EDGE_CODES: [(u8, u8); 6] = [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)];

fn edge_code_index(u: u8, v: u8) -> usize {
    match (u, v) {
        (0, 1) => 0,
        (1, 0) => 1,
        (0, 2) => 2,
        (2, 0) => 3,
        (1, 2) => 4,
        (2, 1) => 5,
        _ => unreachable!("invalid label pair ({u},{v})"),
    }
}

/// Census of the 36 motif classes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MotifCensus {
    /// `counts[c2 * 6 + c3]` where `c2`/`c3` are canonical edge-code
    /// indices of the second and third edges. Always length [`N_MOTIFS`].
    pub counts: Vec<u64>,
}

impl Default for MotifCensus {
    fn default() -> Self {
        MotifCensus {
            counts: vec![0; N_MOTIFS],
        }
    }
}

impl MotifCensus {
    /// Total instances counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalised motif distribution (all zeros if nothing was counted).
    pub fn distribution(&self) -> Vec<f64> {
        let total = self.total();
        let mut out = vec![0.0; N_MOTIFS];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.counts) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Human-readable class name, e.g. `(0->1)(1->0)(0->2)`.
    pub fn class_name(idx: usize) -> String {
        let (c2, c3) = (idx / 6, idx % 6);
        let fmt = |c: (u8, u8)| format!("({}->{})", c.0, c.1);
        format!("(0->1){}{}", fmt(EDGE_CODES[c2]), fmt(EDGE_CODES[c3]))
    }

    fn add(&mut self, c2: usize, c3: usize, weight: u64) {
        self.counts[c2 * 6 + c3] += weight;
    }
}

/// Label an endpoint under the map `a->0, b->1, c->2` where `c` is the
/// (optional) third node; returns `None` if the node is none of them.
#[inline]
fn label(x: u32, a: u32, b: u32, c: Option<u32>) -> Option<u8> {
    if x == a {
        Some(0)
    } else if x == b {
        Some(1)
    } else if Some(x) == c {
        Some(2)
    } else {
        None
    }
}

struct EdgeRec {
    t: u64,
    u: u32,
    v: u32,
}

/// Shared machinery: count motifs anchored at the given edge indices.
fn count_anchored(
    edges: &[EdgeRec],
    incident: &[Vec<u32>],
    anchors: impl Iterator<Item = usize>,
    delta: u64,
    census: &mut MotifCensus,
) {
    let mut cand2: Vec<u32> = Vec::new();
    let mut cand3: Vec<u32> = Vec::new();
    for i in anchors {
        let e1 = &edges[i];
        let (a, b) = (e1.u, e1.v);
        let t_hi = e1.t.saturating_add(delta);
        // window candidates for the 2nd edge: incident to a or b, j > i
        cand2.clear();
        merge_window(
            edges,
            &incident[a as usize],
            &incident[b as usize],
            i,
            t_hi,
            &mut cand2,
        );
        for &j in cand2.iter() {
            let e2 = &edges[j as usize];
            // identify third node (if any) introduced by e2
            let c: Option<u32> = [e2.u, e2.v].into_iter().find(|&x| x != a && x != b);
            let l2u = label(e2.u, a, b, c).expect("e2 incident by construction");
            let l2v = label(e2.v, a, b, c).expect("e2 endpoint must be labelled");
            let c2 = edge_code_index(l2u, l2v);
            // window candidates for the 3rd edge
            cand3.clear();
            match c {
                Some(cn) => {
                    // 3 nodes fixed: e3 must have BOTH endpoints in {a,b,cn}
                    merge_window3(
                        edges,
                        &incident[a as usize],
                        &incident[b as usize],
                        &incident[cn as usize],
                        j as usize,
                        t_hi,
                        &mut cand3,
                    );
                    for &k in cand3.iter() {
                        let e3 = &edges[k as usize];
                        let (Some(l3u), Some(l3v)) = (label(e3.u, a, b, c), label(e3.v, a, b, c))
                        else {
                            continue;
                        };
                        census.add(c2, edge_code_index(l3u, l3v), 1);
                    }
                }
                None => {
                    // e2 within {a,b}: e3 may introduce the third node
                    merge_window(
                        edges,
                        &incident[a as usize],
                        &incident[b as usize],
                        j as usize,
                        t_hi,
                        &mut cand3,
                    );
                    for &k in cand3.iter() {
                        let e3 = &edges[k as usize];
                        let c3n: Option<u32> = [e3.u, e3.v].into_iter().find(|&x| x != a && x != b);
                        let (Some(l3u), Some(l3v)) =
                            (label(e3.u, a, b, c3n), label(e3.v, a, b, c3n))
                        else {
                            continue;
                        };
                        census.add(c2, edge_code_index(l3u, l3v), 1);
                    }
                }
            }
        }
    }
}

/// Sorted-merge of two incident lists, keeping indices `> lo` with
/// `t <= t_hi`, deduplicated.
fn merge_window(
    edges: &[EdgeRec],
    la: &[u32],
    lb: &[u32],
    lo: usize,
    t_hi: u64,
    out: &mut Vec<u32>,
) {
    let sa = upper_slice(edges, la, lo, t_hi);
    let sb = upper_slice(edges, lb, lo, t_hi);
    let (mut i, mut j) = (0, 0);
    while i < sa.len() || j < sb.len() {
        let next = match (sa.get(i), sb.get(j)) {
            (Some(&x), Some(&y)) => {
                if x == y {
                    i += 1;
                    j += 1;
                    x
                } else if x < y {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        out.push(next);
    }
}

/// Three-way variant of [`merge_window`].
fn merge_window3(
    edges: &[EdgeRec],
    la: &[u32],
    lb: &[u32],
    lc: &[u32],
    lo: usize,
    t_hi: u64,
    out: &mut Vec<u32>,
) {
    let mut tmp: Vec<u32> = Vec::new();
    merge_window(edges, la, lb, lo, t_hi, &mut tmp);
    let sc = upper_slice(edges, lc, lo, t_hi);
    let (mut i, mut j) = (0, 0);
    while i < tmp.len() || j < sc.len() {
        let next = match (tmp.get(i), sc.get(j)) {
            (Some(&x), Some(&y)) => {
                if x == y {
                    i += 1;
                    j += 1;
                    x
                } else if x < y {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        out.push(next);
    }
}

/// Sub-slice of an incident list with edge index `> lo` and time `<= t_hi`.
/// Incident lists are sorted by edge index, and edge index order is time
/// order, so both bounds are binary searches.
fn upper_slice<'a>(edges: &[EdgeRec], list: &'a [u32], lo: usize, t_hi: u64) -> &'a [u32] {
    let start = list.partition_point(|&e| (e as usize) <= lo);
    let end = list.partition_point(|&e| edges[e as usize].t <= t_hi);
    if start >= end {
        &[]
    } else {
        &list[start..end]
    }
}

fn prepare(g: &TemporalGraph) -> (Vec<EdgeRec>, Vec<Vec<u32>>) {
    // edges are already sorted by (t,u,v); keep that order as the tiebreak.
    let edges: Vec<EdgeRec> = g
        .edges()
        .iter()
        .filter(|e| e.u != e.v)
        .map(|e| EdgeRec {
            t: e.t as u64,
            u: e.u,
            v: e.v,
        })
        .collect();
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.n_nodes()];
    for (i, e) in edges.iter().enumerate() {
        incident[e.u as usize].push(i as u32);
        if e.v != e.u {
            incident[e.v as usize].push(i as u32);
        }
    }
    (edges, incident)
}

/// Exact census of all δ-temporal motifs in `g`.
pub fn count_motifs(g: &TemporalGraph, delta: u64) -> MotifCensus {
    let (edges, incident) = prepare(g);
    let mut census = MotifCensus::default();
    count_anchored(&edges, &incident, 0..edges.len(), delta, &mut census);
    census
}

/// Anchor-sampled census: pick `max_anchors` anchor edges uniformly at
/// random, count exactly for those anchors, and rescale by `m/max_anchors`.
/// Returns the exact census when `m <= max_anchors`.
pub fn count_motifs_sampled<R: Rng + ?Sized>(
    g: &TemporalGraph,
    delta: u64,
    max_anchors: usize,
    rng: &mut R,
) -> MotifCensus {
    let (edges, incident) = prepare(g);
    let m = edges.len();
    if m <= max_anchors {
        let mut census = MotifCensus::default();
        count_anchored(&edges, &incident, 0..m, delta, &mut census);
        return census;
    }
    // Floyd-ish sampling of distinct anchors
    let mut picked = std::collections::HashSet::with_capacity(max_anchors);
    while picked.len() < max_anchors {
        picked.insert(rng.gen_range(0..m));
    }
    let mut anchors: Vec<usize> = picked.into_iter().collect();
    anchors.sort_unstable();
    let mut census = MotifCensus::default();
    count_anchored(&edges, &incident, anchors.into_iter(), delta, &mut census);
    let scale = m as f64 / max_anchors as f64;
    for c in census.counts.iter_mut() {
        *c = (*c as f64 * scale).round() as u64;
    }
    census
}

/// Census per contiguous time chunk: splits `0..T` into `n_chunks` ranges
/// and counts motifs among edges inside each range. The resulting
/// distributions serve as the sample sets for the Table VI MMD.
pub fn census_per_chunk(g: &TemporalGraph, delta: u64, n_chunks: usize) -> Vec<MotifCensus> {
    assert!(n_chunks >= 1);
    let t_count = g.n_timestamps();
    let mut out = Vec::with_capacity(n_chunks);
    for c in 0..n_chunks {
        let lo = (c * t_count / n_chunks) as u32;
        let hi = (((c + 1) * t_count / n_chunks).max(c * t_count / n_chunks + 1)) as u32;
        let chunk_edges: Vec<tg_graph::TemporalEdge> = g
            .edges()
            .iter()
            .filter(|e| e.t >= lo && e.t < hi)
            .copied()
            .collect();
        let sub = TemporalGraph::from_edges(g.n_nodes(), t_count, chunk_edges);
        out.push(count_motifs(&sub, delta));
    }
    out
}

/// Sampled variant of [`census_per_chunk`]: each chunk census anchors at
/// most `max_anchors` edges (see [`count_motifs_sampled`]). Use on dense,
/// bursty graphs (EMAIL-like) where the exact census is quadratic in the
/// burst size.
pub fn census_per_chunk_sampled<R: Rng + ?Sized>(
    g: &TemporalGraph,
    delta: u64,
    n_chunks: usize,
    max_anchors: usize,
    rng: &mut R,
) -> Vec<MotifCensus> {
    assert!(n_chunks >= 1);
    let t_count = g.n_timestamps();
    let mut out = Vec::with_capacity(n_chunks);
    for c in 0..n_chunks {
        let lo = (c * t_count / n_chunks) as u32;
        let hi = (((c + 1) * t_count / n_chunks).max(c * t_count / n_chunks + 1)) as u32;
        let chunk_edges: Vec<tg_graph::TemporalEdge> = g
            .edges()
            .iter()
            .filter(|e| e.t >= lo && e.t < hi)
            .copied()
            .collect();
        let sub = TemporalGraph::from_edges(g.n_nodes(), t_count, chunk_edges);
        out.push(count_motifs_sampled(&sub, delta, max_anchors, rng));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use tg_graph::TemporalEdge;

    /// Reference O(m^3) enumerator.
    fn brute_force(g: &TemporalGraph, delta: u64) -> MotifCensus {
        let edges: Vec<&TemporalEdge> = g.edges().iter().filter(|e| e.u != e.v).collect();
        let mut census = MotifCensus::default();
        let m = edges.len();
        for i in 0..m {
            for j in (i + 1)..m {
                for k in (j + 1)..m {
                    if (edges[k].t as u64) > edges[i].t as u64 + delta {
                        continue;
                    }
                    let mut nodes = vec![
                        edges[i].u, edges[i].v, edges[j].u, edges[j].v, edges[k].u, edges[k].v,
                    ];
                    nodes.sort_unstable();
                    nodes.dedup();
                    if nodes.len() > 3 {
                        continue;
                    }
                    // canonical labels by first appearance
                    let mut map: Vec<(u32, u8)> = Vec::new();
                    let get = |x: u32, map: &mut Vec<(u32, u8)>| -> u8 {
                        if let Some(&(_, l)) = map.iter().find(|&&(n, _)| n == x) {
                            l
                        } else {
                            let l = map.len() as u8;
                            map.push((x, l));
                            l
                        }
                    };
                    let _ = get(edges[i].u, &mut map);
                    let _ = get(edges[i].v, &mut map);
                    let c2u = get(edges[j].u, &mut map);
                    let c2v = get(edges[j].v, &mut map);
                    let c2 = edge_code_index(c2u, c2v);
                    let c3u = get(edges[k].u, &mut map);
                    let c3v = get(edges[k].v, &mut map);
                    let c3 = edge_code_index(c3u, c3v);
                    census.add(c2, c3, 1);
                }
            }
        }
        census
    }

    #[test]
    fn simple_triangle_sequence() {
        // edges 0->1 (t0), 1->2 (t1), 2->0 (t2): one cyclic triangle motif
        let g = TemporalGraph::from_edges(
            3,
            3,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 1),
                TemporalEdge::new(2, 0, 2),
            ],
        );
        let c = count_motifs(&g, 10);
        assert_eq!(c.total(), 1);
        // signature: (0->1)(1->2)(2->0) => c2=(1,2)=idx4, c3=(2,0)=idx3
        assert_eq!(c.counts[4 * 6 + 3], 1);
    }

    #[test]
    fn delta_window_excludes_spread_triples() {
        let g = TemporalGraph::from_edges(
            3,
            10,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 5),
                TemporalEdge::new(2, 0, 9),
            ],
        );
        assert_eq!(count_motifs(&g, 10).total(), 1);
        assert_eq!(count_motifs(&g, 8).total(), 0); // span 9 > 8
        assert_eq!(count_motifs(&g, 5).total(), 0);
    }

    #[test]
    fn two_node_repeat_motif() {
        // 0->1 three times: one motif (0->1)(0->1)(0->1) => c2=0, c3=0
        let g = TemporalGraph::from_edges(
            2,
            3,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(0, 1, 2),
            ],
        );
        let c = count_motifs(&g, 5);
        assert_eq!(c.total(), 1);
        assert_eq!(c.counts[0], 1);
    }

    #[test]
    fn four_node_triples_excluded() {
        let g = TemporalGraph::from_edges(
            4,
            3,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 1),
                TemporalEdge::new(2, 3, 2), // introduces 4th node in any triple
            ],
        );
        assert_eq!(count_motifs(&g, 10).total(), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 8;
            let t_count = 6;
            let m = 30;
            let edges: Vec<TemporalEdge> = (0..m)
                .map(|_| {
                    let u = rng.gen_range(0..n as u32);
                    let mut v = rng.gen_range(0..n as u32);
                    while v == u {
                        v = rng.gen_range(0..n as u32);
                    }
                    TemporalEdge::new(u, v, rng.gen_range(0..t_count as u32))
                })
                .collect();
            let g = TemporalGraph::from_edges(n, t_count, edges);
            for delta in [0u64, 1, 2, 5] {
                let fast = count_motifs(&g, delta);
                let slow = brute_force(&g, delta);
                assert_eq!(fast, slow, "seed {seed} delta {delta}");
            }
        }
    }

    #[test]
    fn sampled_census_is_exact_when_anchors_cover() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = TemporalGraph::from_edges(
            4,
            4,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 2, 1),
                TemporalEdge::new(2, 0, 2),
                TemporalEdge::new(0, 2, 3),
            ],
        );
        let exact = count_motifs(&g, 10);
        let sampled = count_motifs_sampled(&g, 10, 100, &mut rng);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn sampled_census_estimates_total() {
        let mut rng = SmallRng::seed_from_u64(4);
        // bursty clique-ish graph with plenty of motifs
        let mut edges = Vec::new();
        for t in 0..30u32 {
            for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (0, 2)] {
                edges.push(TemporalEdge::new(u, v, t));
            }
        }
        let g = TemporalGraph::from_edges(3, 30, edges);
        let exact = count_motifs(&g, 3);
        let est = count_motifs_sampled(&g, 3, 40, &mut rng);
        let (a, b) = (exact.total() as f64, est.total() as f64);
        assert!((a - b).abs() / a < 0.5, "exact {a} est {b}");
    }

    #[test]
    fn distribution_normalises() {
        let g = TemporalGraph::from_edges(
            3,
            3,
            vec![
                TemporalEdge::new(0, 1, 0),
                TemporalEdge::new(1, 0, 1),
                TemporalEdge::new(0, 1, 2),
            ],
        );
        let c = count_motifs(&g, 5);
        let d = c.distribution();
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunked_census_covers_all_chunks() {
        let mut edges = Vec::new();
        for t in 0..12u32 {
            edges.push(TemporalEdge::new(0, 1, t));
            edges.push(TemporalEdge::new(1, 2, t));
        }
        let g = TemporalGraph::from_edges(3, 12, edges);
        let per = census_per_chunk(&g, 2, 4);
        assert_eq!(per.len(), 4);
        assert!(per.iter().all(|c| c.total() > 0));
    }

    #[test]
    fn sampled_chunk_census_matches_exact_when_covering() {
        let mut edges = Vec::new();
        for t in 0..12u32 {
            edges.push(TemporalEdge::new(0, 1, t));
            edges.push(TemporalEdge::new(1, 2, t));
        }
        let g = TemporalGraph::from_edges(3, 12, edges);
        let exact = census_per_chunk(&g, 2, 3);
        let mut rng = SmallRng::seed_from_u64(8);
        let sampled = census_per_chunk_sampled(&g, 2, 3, 10_000, &mut rng);
        assert_eq!(exact, sampled);
    }

    #[test]
    fn class_names_are_distinct() {
        let mut names: Vec<String> = (0..N_MOTIFS).map(MotifCensus::class_name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), N_MOTIFS);
    }

    #[test]
    fn self_loops_ignored() {
        let g = TemporalGraph::from_edges(
            2,
            3,
            vec![
                TemporalEdge::new(0, 0, 0),
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(1, 1, 2),
            ],
        );
        assert_eq!(count_motifs(&g, 10).total(), 0);
    }
}
