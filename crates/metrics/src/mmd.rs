//! Maximum Mean Discrepancy with a Gaussian kernel over total-variation
//! distance (paper Eq. 1), the Table VI similarity measure between motif
//! distributions of the raw and generated temporal networks.

/// Total-variation distance between two distributions of equal length:
/// `TV(p, q) = 1/2 Σ_i |p_i - q_i|` (in `[0, 1]` for probability vectors).
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "tv_distance: length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Gaussian kernel `k(x) = exp(-x^2 / (2 sigma^2))`.
pub fn gaussian_kernel(x: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    (-x * x / (2.0 * sigma * sigma)).exp()
}

/// Biased (V-statistic) squared MMD between two sample sets of
/// distributions, with `k(x, y) = exp(-TV(x,y)^2 / 2σ^2)`:
///
/// `MMD² = E_{x,y~P}[k] + E_{x,y~Q}[k] - 2 E_{x~P, y~Q}[k]`.
pub fn mmd2_tv(samples_p: &[Vec<f64>], samples_q: &[Vec<f64>], sigma: f64) -> f64 {
    assert!(
        !samples_p.is_empty() && !samples_q.is_empty(),
        "mmd2_tv: empty sample set"
    );
    let kernel_mean = |xs: &[Vec<f64>], ys: &[Vec<f64>]| -> f64 {
        let mut acc = 0.0;
        for x in xs {
            for y in ys {
                acc += gaussian_kernel(tv_distance(x, y), sigma);
            }
        }
        acc / (xs.len() * ys.len()) as f64
    };
    let kpp = kernel_mean(samples_p, samples_p);
    let kqq = kernel_mean(samples_q, samples_q);
    let kpq = kernel_mean(samples_p, samples_q);
    (kpp + kqq - 2.0 * kpq).max(0.0)
}

/// Degenerate two-distribution case (one sample per side):
/// `MMD² = 2 (1 - k(TV(p, q)))`.
pub fn mmd2_single(p: &[f64], q: &[f64], sigma: f64) -> f64 {
    mmd2_tv(&[p.to_vec()], &[q.to_vec()], sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_basics() {
        assert_eq!(tv_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert_eq!(tv_distance(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert!((tv_distance(&[0.7, 0.3], &[0.3, 0.7]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn kernel_properties() {
        assert_eq!(gaussian_kernel(0.0, 1.0), 1.0);
        assert!(gaussian_kernel(1.0, 1.0) < 1.0);
        assert!(gaussian_kernel(0.2, 1.0) > gaussian_kernel(0.8, 1.0));
    }

    #[test]
    fn mmd_zero_for_identical_sets() {
        let s = vec![vec![0.2, 0.8], vec![0.5, 0.5]];
        let m = mmd2_tv(&s, &s, 1.0);
        assert!(m.abs() < 1e-12, "{m}");
    }

    #[test]
    fn mmd_increases_with_divergence() {
        let p = vec![vec![0.5, 0.5]];
        let near = vec![vec![0.55, 0.45]];
        let far = vec![vec![0.95, 0.05]];
        let m_near = mmd2_tv(&p, &near, 1.0);
        let m_far = mmd2_tv(&p, &far, 1.0);
        assert!(m_far > m_near, "{m_far} vs {m_near}");
    }

    #[test]
    fn single_matches_formula() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let sigma = 0.5;
        let expect = 2.0 * (1.0 - gaussian_kernel(tv_distance(&p, &q), sigma));
        assert!((mmd2_single(&p, &q, sigma) - expect).abs() < 1e-12);
    }

    #[test]
    fn mmd_symmetry() {
        let a = vec![vec![0.3, 0.7], vec![0.6, 0.4]];
        let b = vec![vec![0.1, 0.9]];
        assert!((mmd2_tv(&a, &b, 1.0) - mmd2_tv(&b, &a, 1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tv_length_mismatch_panics() {
        tv_distance(&[1.0], &[0.5, 0.5]);
    }
}
