//! The paper's evaluation harness (Eq. 10): per-timestamp accumulated
//! snapshots of the real and generated graphs are compared metric by
//! metric, and the relative differences are reduced with mean (`f_avg`,
//! Table V) or median (`f_med`, Table IV). Also exposes the raw per-
//! timestamp series used by Figure 5.

use crate::stats::{GraphStats, MetricKind};
use serde::{Deserialize, Serialize};
use tg_graph::{Snapshot, TemporalGraph};

/// Per-timestamp values of one statistic on accumulated snapshots.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricSeries {
    pub kind: MetricKind,
    /// `values[t]` = statistic on edges accumulated through timestamp `t`.
    pub values: Vec<f64>,
}

/// All seven statistic series for one temporal graph (Figure 5 payload).
pub fn metric_timeseries(g: &TemporalGraph) -> Vec<MetricSeries> {
    let t_count = g.n_timestamps();
    let mut per_t: Vec<GraphStats> = Vec::with_capacity(t_count);
    for t in 0..t_count {
        let snap = Snapshot::accumulated(g, t as u32, true);
        per_t.push(GraphStats::compute(&snap));
    }
    MetricKind::ALL
        .iter()
        .map(|&kind| MetricSeries {
            kind,
            values: per_t.iter().map(|s| s.get(kind)).collect(),
        })
        .collect()
}

/// Relative error `|real - gen| / |real|`, with the paper's convention that
/// a zero reference falls back to the absolute difference.
pub fn relative_error(real: f64, generated: f64) -> f64 {
    let diff = (real - generated).abs();
    if real.abs() < 1e-12 {
        diff
    } else {
        diff / real.abs()
    }
}

/// The f_avg / f_med scores of one metric between a real and generated
/// temporal graph (Eq. 10).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MetricScore {
    pub kind: MetricKind,
    pub avg: f64,
    pub med: f64,
}

/// Compare two temporal graphs across all seven Table III statistics.
///
/// Both graphs are evaluated on `T` accumulated snapshots where `T` is the
/// *real* graph's timestamp count; the generated graph must cover the same
/// horizon (extra timestamps are ignored, missing ones are an error).
pub fn evaluate(real: &TemporalGraph, generated: &TemporalGraph) -> Vec<MetricScore> {
    let t_count = real.n_timestamps();
    assert!(
        generated.n_timestamps() >= t_count,
        "generated graph covers {} timestamps, need {}",
        generated.n_timestamps(),
        t_count
    );
    let mut per_metric_diffs: Vec<Vec<f64>> =
        std::iter::repeat_with(|| Vec::with_capacity(t_count))
            .take(7)
            .collect();
    for t in 0..t_count {
        let sr = GraphStats::compute(&Snapshot::accumulated(real, t as u32, true));
        let sg = GraphStats::compute(&Snapshot::accumulated(generated, t as u32, true));
        for (i, kind) in MetricKind::ALL.iter().enumerate() {
            per_metric_diffs[i].push(relative_error(sr.get(*kind), sg.get(*kind)));
        }
    }
    MetricKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| MetricScore {
            kind,
            avg: mean(&per_metric_diffs[i]),
            med: median(&per_metric_diffs[i]),
        })
        .collect()
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (0 for empty input); even lengths average the middle pair.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::TemporalEdge;

    fn line_graph(n: usize, t_count: usize) -> TemporalGraph {
        // one new edge per timestamp along a path
        let edges: Vec<TemporalEdge> = (0..t_count)
            .map(|t| TemporalEdge::new((t % (n - 1)) as u32, (t % (n - 1)) as u32 + 1, t as u32))
            .collect();
        TemporalGraph::from_edges(n, t_count, edges)
    }

    #[test]
    fn identical_graphs_score_zero() {
        let g = line_graph(6, 5);
        let scores = evaluate(&g, &g);
        assert_eq!(scores.len(), 7);
        for s in scores {
            assert_eq!(s.avg, 0.0, "{}", s.kind.name());
            assert_eq!(s.med, 0.0, "{}", s.kind.name());
        }
    }

    #[test]
    fn different_graphs_score_positive() {
        let g = line_graph(6, 5);
        // generated: same node count, all edges from node 0 (star-ish)
        let edges: Vec<TemporalEdge> = (0..5)
            .map(|t| TemporalEdge::new(0, (t % 5) as u32 + 1, t as u32))
            .collect();
        let h = TemporalGraph::from_edges(6, 5, edges);
        let scores = evaluate(&g, &h);
        let total: f64 = scores.iter().map(|s| s.avg).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn timeseries_is_monotone_for_accumulating_metrics() {
        let g = line_graph(8, 7);
        let series = metric_timeseries(&g);
        let mean_deg = series
            .iter()
            .find(|s| s.kind == MetricKind::MeanDegree)
            .unwrap();
        for w in mean_deg.values.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "accumulated mean degree must not shrink"
            );
        }
        let ncomp = series
            .iter()
            .find(|s| s.kind == MetricKind::NComponents)
            .unwrap();
        for w in ncomp.values.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "components must not increase");
        }
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(10.0, 5.0), 0.5);
        assert_eq!(relative_error(0.0, 3.0), 3.0); // absolute fallback
        assert_eq!(relative_error(4.0, 4.0), 0.0);
    }

    #[test]
    fn mean_median_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    #[should_panic(expected = "timestamps")]
    fn mismatched_horizon_panics() {
        let g = line_graph(6, 5);
        let h = line_graph(6, 3);
        evaluate(&g, &h);
    }
}
