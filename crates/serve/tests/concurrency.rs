//! The tentpole proof: N concurrent clients against ONE `Arc`-shared
//! model produce streams byte-identical to sequential in-process
//! generation with the same per-request seeds.
//!
//! The server here runs in-process (ephemeral TCP port, real sockets,
//! real worker threads) with a loader that counts invocations — so the
//! tests can assert that fan-out never reloaded or cloned the model.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tg_graph::io::StreamingWriterSink;
use tg_graph::sink::GraphSink;
use tg_graph::{TemporalEdge, TemporalGraph};
use tg_serve::{Client, ClientError, ServeConfig, ServeReport, Server, ServerHandle};
use tgae::{Session, SharedRun, TgaeConfig};

fn ring(n: u32, t_count: u32) -> TemporalGraph {
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

/// Train a small run once and freeze it into a `SharedRun`.
fn trained_run() -> SharedRun {
    let observed = ring(24, 3);
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 2;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(5)
        .build()
        .expect("valid ring");
    session.train().expect("training runs");
    session.into_shared()
}

/// The sequential in-process reference: the exact bytes
/// `StreamingWriterSink` writes for this run + seed.
fn reference_bytes(run: &SharedRun, seed: u64) -> (Vec<u8>, u64) {
    let mut buf = Vec::new();
    let n = run
        .simulate_seeded(seed, StreamingWriterSink::new(&mut buf))
        .expect("engine runs")
        .expect("in-memory write cannot fail");
    (buf, n)
}

struct TestServer {
    addr: String,
    handle: ServerHandle,
    thread: JoinHandle<io::Result<ServeReport>>,
    loads: Arc<AtomicUsize>,
}

impl TestServer {
    fn start(run: SharedRun, cfg: ServeConfig) -> TestServer {
        let loads = Arc::new(AtomicUsize::new(0));
        let loader_loads = Arc::clone(&loads);
        let loader = Box::new(move |run_id: &str| {
            loader_loads.fetch_add(1, Ordering::SeqCst);
            if run_id == "shared" {
                Ok(run.clone())
            } else {
                Err(format!("no run named `{run_id}`"))
            }
        });
        let server = Server::bind_tcp("127.0.0.1:0", loader, cfg).expect("bind ephemeral port");
        let addr = server.tcp_addr().expect("tcp server").to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread,
            loads,
        }
    }

    fn stop(self) -> ServeReport {
        self.handle.shutdown();
        self.thread
            .join()
            .expect("server thread")
            .expect("clean drain")
    }
}

#[test]
fn concurrent_streams_are_byte_identical_to_sequential_in_process() {
    let run = trained_run();
    let server = TestServer::start(run.clone(), ServeConfig::default());

    // Warm the cache with one sequential request so the concurrent waves
    // below are pure hits on one resident model.
    {
        let mut client = Client::connect_tcp(&server.addr).unwrap();
        let mut sink = Vec::new();
        let outcome = client.simulate("shared", 100, &mut sink).unwrap();
        assert_eq!(outcome.cache, "miss");
        let (want, want_n) = reference_bytes(&run, 100);
        assert_eq!(outcome.n_edges, want_n);
        assert_eq!(sink, want, "warm-up stream diverged from in-process bytes");
    }

    for &n_clients in &[1usize, 4, 8] {
        let workers: Vec<_> = (0..n_clients)
            .map(|i| {
                let addr = server.addr.clone();
                let seed = 200 + i as u64;
                std::thread::spawn(move || {
                    let mut client = Client::connect_tcp(&addr).expect("connect");
                    let mut sink = Vec::new();
                    let outcome = client
                        .simulate("shared", seed, &mut sink)
                        .expect("simulate");
                    (seed, sink, outcome)
                })
            })
            .collect();
        for worker in workers {
            let (seed, got, outcome) = worker.join().expect("client thread");
            let (want, want_n) = reference_bytes(&run, seed);
            assert_eq!(outcome.n_edges, want_n, "seed {seed}: edge count diverged");
            assert_eq!(
                got, want,
                "seed {seed} under {n_clients} concurrent clients: bytes diverged"
            );
            assert_eq!(
                outcome.cache, "hit",
                "model was loaded once and must stay resident"
            );
        }
    }

    assert_eq!(
        server.loads.load(Ordering::SeqCst),
        1,
        "all 13 requests must share the one loaded model (no per-request load/clone)"
    );
    let report = server.stop();
    assert_eq!(report.requests_served, 1 + 1 + 4 + 8);
}

#[test]
fn interleaved_eval_and_simulate_on_one_run_id() {
    let run = trained_run();
    let server = TestServer::start(run.clone(), ServeConfig::default());

    // In-process references.
    let shape = (run.observed().n_nodes(), run.observed().n_timestamps());
    let synthetic = run
        .simulate_seeded(77, GraphSink::new(shape.0, shape.1))
        .unwrap();
    let want_scores = format!("{:?}", run.evaluate(&synthetic).unwrap());
    let (want_bytes, _) = reference_bytes(&run, 33);

    let addr_eval = server.addr.clone();
    let evaluator = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr_eval).unwrap();
        let mut out = Vec::new();
        for _ in 0..3 {
            out.push(format!("{:?}", client.eval("shared", 77).unwrap()));
        }
        out
    });
    let addr_sim = server.addr.clone();
    let simulator = std::thread::spawn(move || {
        let mut client = Client::connect_tcp(&addr_sim).unwrap();
        let mut out = Vec::new();
        for _ in 0..3 {
            let mut sink = Vec::new();
            client.simulate("shared", 33, &mut sink).unwrap();
            out.push(sink);
        }
        out
    });

    for scores in evaluator.join().unwrap() {
        assert_eq!(scores, want_scores, "concurrent eval diverged");
    }
    for bytes in simulator.join().unwrap() {
        assert_eq!(bytes, want_bytes, "simulate interleaved with eval diverged");
    }
    assert_eq!(server.loads.load(Ordering::SeqCst), 1);
    server.stop();
}

#[test]
fn stats_requests_match_the_in_process_summary() {
    let run = trained_run();
    let server = TestServer::start(run.clone(), ServeConfig::default());

    let want = run
        .simulate_seeded(
            9,
            tg_graph::sink::StatsSink::new(run.observed().n_timestamps()),
        )
        .unwrap();

    let mut client = Client::connect_tcp(&server.addr).unwrap();
    let outcome = client.simulate_stats("shared", 9).unwrap();
    assert_eq!(outcome.n_edges, want.n_edges());
    let got: tg_graph::sink::GenerationStats = serde_json::from_str(&outcome.stats_json).unwrap();
    assert_eq!(got, want);
    server.stop();
}

#[test]
fn unknown_run_id_is_a_typed_not_found_and_the_connection_survives() {
    let run = trained_run();
    let server = TestServer::start(run, ServeConfig::default());

    let mut client = Client::connect_tcp(&server.addr).unwrap();
    let mut sink = Vec::new();
    match client.simulate("nope", 1, &mut sink) {
        Err(ClientError::Server { kind, message }) => {
            assert_eq!(kind, "not_found");
            assert!(message.contains("nope"), "{message}");
        }
        other => panic!("expected not_found, got {other:?}"),
    }
    assert!(sink.is_empty(), "no edges may precede the refusal");
    // Same connection keeps working afterwards.
    client.ping().unwrap();
    let outcome = client.simulate("shared", 4, &mut sink).unwrap();
    assert!(outcome.n_edges > 0);
    server.stop();
}

#[test]
fn draining_server_refuses_new_work_with_a_typed_frame() {
    let run = trained_run();
    let server = TestServer::start(run, ServeConfig::default());

    // An already-open connection also gets refused per-request once the
    // drain starts.
    let mut existing = Client::connect_tcp(&server.addr).unwrap();
    server.handle.shutdown();
    assert!(server.handle.is_draining());
    match existing.ping() {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "shutdown"),
        other => panic!("expected shutdown refusal, got {other:?}"),
    }

    // A brand-new connection is refused at accept time (error frame or,
    // if the listener already closed, a transport error).
    match Client::connect_tcp(&server.addr) {
        Ok(mut fresh) => match fresh.ping() {
            Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "shutdown"),
            Err(ClientError::Io(_)) => {}
            other => panic!("expected refusal, got {other:?}"),
        },
        Err(ClientError::Io(_)) => {}
        Err(other) => panic!("unexpected connect failure {other:?}"),
    }

    let report = server.thread.join().unwrap().unwrap();
    assert_eq!(report.requests_served, 0);
}
