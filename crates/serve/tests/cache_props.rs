//! Property tests for the model-cache LRU invariants, driven by random
//! op sequences:
//!
//! 1. resident entries never exceed the configured capacity;
//! 2. a hit returns an `Arc` aliasing the resident instance (anyone
//!    already holding a handle to that id sees pointer equality);
//! 3. only idle entries are evicted — an id with a live handle stays
//!    resident, and saturation is reported only when the held set alone
//!    fills the cache.

use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use tg_serve::{CacheError, CacheOutcome, ModelCache};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_invariants_hold_under_random_ops(
        capacity in 1usize..5,
        ops in proptest::collection::vec((0usize..6, 0u8..3), 1..40),
    ) {
        let cache: ModelCache<String> =
            ModelCache::new(capacity, |id: &str| Ok(format!("model:{id}")));
        // Live handles standing in for in-flight requests.
        let mut held: Vec<(String, Arc<String>)> = Vec::new();
        for (id_idx, action) in ops {
            let id = format!("run{id_idx}");
            if action == 2 {
                // A request finishes: release the oldest live handle.
                if !held.is_empty() {
                    held.remove(0);
                }
            } else {
                let was_resident = cache.contains(&id);
                let held_ids: BTreeSet<&str> =
                    held.iter().map(|(h, _)| h.as_str()).collect();
                match cache.get(&id) {
                    Ok((arc, outcome)) => {
                        prop_assert_eq!(
                            outcome == CacheOutcome::Hit,
                            was_resident,
                            "outcome must reflect residency"
                        );
                        // Invariant 2: one resident instance per id.
                        for (hid, harc) in &held {
                            if *hid == id {
                                prop_assert!(
                                    Arc::ptr_eq(harc, &arc),
                                    "hit returned a different instance than a live handle"
                                );
                            }
                        }
                        if action == 1 {
                            held.push((id.clone(), arc));
                        }
                    }
                    Err(CacheError::Saturated { capacity: reported }) => {
                        prop_assert_eq!(reported, capacity);
                        // Saturation is only legal when live handles alone
                        // pin a full cache and the id itself is absent.
                        prop_assert!(!was_resident);
                        prop_assert!(
                            held_ids.len() >= capacity,
                            "saturated with only {} held ids of capacity {}",
                            held_ids.len(),
                            capacity
                        );
                    }
                    Err(e) => prop_assert!(false, "unexpected cache error: {e}"),
                }
            }
            // Invariant 1: capacity is a hard bound.
            prop_assert!(cache.len() <= capacity);
            // Invariant 3: ids with live handles are never evicted.
            for (hid, _) in &held {
                prop_assert!(
                    cache.contains(hid),
                    "held id {} was evicted",
                    hid
                );
            }
        }
    }

    #[test]
    fn sequential_gets_never_reload_resident_ids(
        ops in proptest::collection::vec(0usize..3, 1..30),
    ) {
        // With capacity >= distinct ids and no concurrency, every id keeps
        // its original instance no matter the access pattern.
        let cache: ModelCache<String> = ModelCache::new(3, |id: &str| Ok(id.to_string()));
        let mut first_seen: std::collections::BTreeMap<String, *const String> =
            std::collections::BTreeMap::new();
        for id_idx in ops {
            let id = format!("run{id_idx}");
            let (arc, _) = cache.get(&id).unwrap();
            let ptr = Arc::as_ptr(&arc);
            match first_seen.get(&id) {
                None => {
                    first_seen.insert(id.clone(), ptr);
                }
                Some(&seen) => prop_assert!(
                    std::ptr::eq(seen, ptr),
                    "id {} was reloaded into a new instance",
                    id
                ),
            }
        }
    }
}
