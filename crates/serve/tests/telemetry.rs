//! The `status` / `metrics` introspection ops against a live in-process
//! server: counters must reflect exactly the requests this test issued,
//! the resident list must name the model it warmed, and the Prometheus
//! exposition must be well-formed text a line-oriented scraper can
//! consume.
//!
//! The metrics registry is process-global, so every run-id here is
//! unique to this file (`tgx_test_tel_*`) — other test binaries run in
//! their own processes and cannot pollute it, and within this binary
//! assertions on per-run counters filter by run-id.

use std::io;
use std::thread::JoinHandle;
use tg_graph::{TemporalEdge, TemporalGraph};
use tg_serve::{Client, ServeConfig, ServeReport, Server, ServerHandle};
use tgae::{Session, SharedRun, TgaeConfig};

fn ring(n: u32, t_count: u32) -> TemporalGraph {
    let mut edges = Vec::new();
    for t in 0..t_count {
        for u in 0..n {
            edges.push(TemporalEdge::new(u, (u + 1) % n, t));
        }
    }
    TemporalGraph::from_edges(n as usize, t_count as usize, edges)
}

fn trained_run() -> SharedRun {
    let observed = ring(24, 3);
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = 2;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(5)
        .build()
        .expect("valid ring");
    session.train().expect("training runs");
    session.into_shared()
}

struct TestServer {
    addr: String,
    handle: ServerHandle,
    thread: JoinHandle<io::Result<ServeReport>>,
}

impl TestServer {
    fn start(run: SharedRun, cfg: ServeConfig) -> TestServer {
        let loader = Box::new(move |run_id: &str| {
            if run_id.starts_with("tgx_test_tel_") {
                Ok(run.clone())
            } else {
                Err(format!("no run named `{run_id}`"))
            }
        });
        let server = Server::bind_tcp("127.0.0.1:0", loader, cfg).expect("bind ephemeral port");
        let addr = server.tcp_addr().expect("tcp server").to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread,
        }
    }

    fn stop(self) -> ServeReport {
        self.handle.shutdown();
        self.thread
            .join()
            .expect("server thread")
            .expect("clean drain")
    }
}

#[test]
fn status_reports_residency_and_exact_request_counters() {
    let server = TestServer::start(trained_run(), ServeConfig::default());
    let mut client = Client::connect_tcp(&server.addr).unwrap();

    // An untouched daemon: nothing resident, nothing in flight.
    let before = client.status().expect("status on idle server");
    assert!(!before.draining);
    assert_eq!(before.inflight_cost, 0);
    assert_eq!(before.inflight_requests, 0);
    assert!(before.max_cost > 0, "default config has a cost budget");
    assert!(
        !before.resident.iter().any(|m| m.run_id == "tgx_test_tel_a"),
        "model resident before any request"
    );

    // One cold simulate, one warm eval: the cache sees miss-then-hit and
    // the per-run counters see two requests with a non-empty byte tally.
    let mut sink = Vec::new();
    let outcome = client.simulate("tgx_test_tel_a", 7, &mut sink).unwrap();
    assert_eq!(outcome.cache, "miss");
    assert!(!sink.is_empty());
    let scores = client.eval("tgx_test_tel_a", 7).unwrap();
    assert!(!scores.is_empty());

    let after = client.status().expect("status after traffic");
    assert!(
        after
            .resident
            .iter()
            .any(|m| m.run_id == "tgx_test_tel_a" && !m.pinned),
        "warmed model must be resident and idle, got {:?}",
        after.resident
    );
    assert!(after.requests_served >= 2);
    assert_eq!(after.inflight_cost, 0, "no request is in flight now");
    assert_eq!(after.inflight_requests, 0);
    assert!(after.cache.misses >= 1, "cold load is a recorded miss");
    assert!(after.cache.hits >= 1, "warm eval is a recorded hit");
    assert_eq!(after.admission_rejected, 0);

    let tallies = after
        .runs
        .iter()
        .find(|r| r.run_id == "tgx_test_tel_a")
        .expect("per-run counters for the run this test drove");
    assert_eq!(tallies.requests, 2, "one simulate + one eval");
    assert!(
        tallies.bytes >= sink.len() as u64,
        "byte counter below the edge stream this test received"
    );

    server.stop();
}

#[test]
fn metrics_exposition_is_parseable_prometheus_text() {
    let server = TestServer::start(trained_run(), ServeConfig::default());
    let mut client = Client::connect_tcp(&server.addr).unwrap();

    let mut sink = Vec::new();
    client.simulate("tgx_test_tel_b", 11, &mut sink).unwrap();
    client.simulate("tgx_test_tel_b", 12, &mut sink).unwrap();

    let text = client.metrics().expect("metrics scrape");

    // Line-oriented sanity: every line is a comment or `name{labels} value`
    // with a numeric value, and names are Prometheus-safe (no dots).
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        assert!(
            value.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "scrape produced no samples");

    // The traffic this test issued is visible under its own run label.
    let requests_line = text
        .lines()
        .find(|l| l.starts_with("serve_requests") && l.contains("run=\"tgx_test_tel_b\""))
        .expect("per-run request counter in exposition");
    assert!(
        requests_line.ends_with(" 2"),
        "two simulates must read 2, got {requests_line:?}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("serve_request_seconds_bucket")),
        "latency histogram missing from exposition"
    );

    server.stop();
}
