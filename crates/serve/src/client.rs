//! The blocking protocol client used by `tgx-cli client`, the tests, and
//! the benchmark harness.

use crate::net::Conn;
use crate::protocol::{kind, read_frame, write_frame, Frame};
use crate::telemetry::StatusReport;
use std::io::{self, Write};
use tg_metrics::MetricScore;
use tgae::CostEstimate;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, torn frame).
    Io(io::Error),
    /// The server refused the request as busy (admission control or
    /// saturated model cache). Retry later.
    Busy(String),
    /// The server answered with a typed error frame other than `busy`.
    Server {
        /// One of the [`kind`] constants.
        kind: String,
        /// The server's diagnosis.
        message: String,
    },
    /// The server broke the protocol (unexpected frame for this state).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Busy(m) => write!(f, "{m}"),
            ClientError::Server { kind, message } => write!(f, "server error ({kind}): {message}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn error_frame(frame: Frame) -> ClientError {
    let kind_str = frame.kind.unwrap_or_else(|| "unknown".to_string());
    let message = frame.message.unwrap_or_default();
    if kind_str == kind::BUSY {
        ClientError::Busy(message)
    } else {
        ClientError::Server {
            kind: kind_str,
            message,
        }
    }
}

/// What an admitted request reported back in its `start` frame, plus the
/// stream's final tally.
#[derive(Clone, Debug)]
pub struct SimulateOutcome {
    /// Total edges generated.
    pub n_edges: u64,
    /// The admission price the server computed.
    pub cost: CostEstimate,
    /// `"hit"` / `"miss"` — whether the model was already resident.
    pub cache: String,
}

/// Outcome of a `simulate --stats` request: the summary JSON instead of
/// an edge stream.
#[derive(Clone, Debug)]
pub struct StatsOutcome {
    /// JSON-encoded `GenerationStats`.
    pub stats_json: String,
    /// Total edges generated (none were transferred).
    pub n_edges: u64,
    /// The admission price the server computed.
    pub cost: CostEstimate,
    /// `"hit"` / `"miss"`.
    pub cache: String,
}

/// One blocking protocol connection. A client may issue any number of
/// sequential requests; drop it to hang up.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connect over TCP (`"127.0.0.1:4321"`).
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let stream = std::net::TcpStream::connect(addr)?;
        // Small request frames must not sit in Nagle's buffer waiting
        // for the server's delayed ACK.
        stream.set_nodelay(true)?;
        Ok(Client {
            conn: Conn::Tcp(stream),
        })
    }

    /// Connect to a Unix-domain socket path.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> Result<Client, ClientError> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Ok(Client {
            conn: Conn::Unix(stream),
        })
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.conn, frame)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.conn)? {
            Some(frame) => Ok(frame),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Expect the `start` acknowledgement of an admitted request.
    fn recv_start(&mut self) -> Result<(CostEstimate, String), ClientError> {
        let frame = self.recv()?;
        match frame.op.as_str() {
            "start" => {
                let cost = frame
                    .cost
                    .ok_or_else(|| ClientError::Protocol("start frame without cost".into()))?;
                let cache = frame.cache.unwrap_or_else(|| "miss".to_string());
                Ok((cost, cache))
            }
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected start, got `{other}`"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::ping())?;
        let frame = self.recv()?;
        match frame.op.as_str() {
            "pong" => Ok(()),
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got `{other}`"
            ))),
        }
    }

    /// Run one simulation on the server, streaming the edge-list text
    /// into `out`. The bytes written are identical to an in-process
    /// `StreamingWriterSink` run of the same run + seed.
    pub fn simulate(
        &mut self,
        run_id: &str,
        seed: u64,
        out: &mut impl Write,
    ) -> Result<SimulateOutcome, ClientError> {
        self.send(&Frame::simulate(run_id, seed, false))?;
        let (cost, cache) = self.recv_start()?;
        loop {
            let frame = self.recv()?;
            match frame.op.as_str() {
                "edges" => {
                    let data = frame
                        .data
                        .ok_or_else(|| ClientError::Protocol("edges frame without data".into()))?;
                    out.write_all(data.as_bytes())?;
                }
                "done" => {
                    out.flush()?;
                    return Ok(SimulateOutcome {
                        n_edges: frame.n_edges.unwrap_or(0),
                        cost,
                        cache,
                    });
                }
                "error" => return Err(error_frame(frame)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected edges/done, got `{other}`"
                    )))
                }
            }
        }
    }

    /// Run one simulation, returning only the `GenerationStats` summary.
    pub fn simulate_stats(&mut self, run_id: &str, seed: u64) -> Result<StatsOutcome, ClientError> {
        self.send(&Frame::simulate(run_id, seed, true))?;
        let (cost, cache) = self.recv_start()?;
        let frame = self.recv()?;
        match frame.op.as_str() {
            "stats" => Ok(StatsOutcome {
                stats_json: frame
                    .data
                    .ok_or_else(|| ClientError::Protocol("stats frame without data".into()))?,
                n_edges: frame.n_edges.unwrap_or(0),
                cost,
                cache,
            }),
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got `{other}`"
            ))),
        }
    }

    /// Simulate under `seed` and score against the observed graph on the
    /// server (Eq. 10 metric suite).
    pub fn eval(&mut self, run_id: &str, seed: u64) -> Result<Vec<MetricScore>, ClientError> {
        self.send(&Frame::eval(run_id, seed))?;
        let _ = self.recv_start()?;
        let frame = self.recv()?;
        match frame.op.as_str() {
            "scores" => frame
                .scores
                .ok_or_else(|| ClientError::Protocol("scores frame without scores".into())),
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected scores, got `{other}`"
            ))),
        }
    }

    /// Fetch the server's introspection report: resident models,
    /// in-flight cost vs budget, cache and per-run request counters.
    pub fn status(&mut self) -> Result<StatusReport, ClientError> {
        self.send(&Frame::status())?;
        let frame = self.recv()?;
        match frame.op.as_str() {
            "status_report" => {
                let json = frame.data.ok_or_else(|| {
                    ClientError::Protocol("status_report frame without data".into())
                })?;
                serde_json::from_str(&json)
                    .map_err(|e| ClientError::Protocol(format!("undecodable status report: {e}")))
            }
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected status_report, got `{other}`"
            ))),
        }
    }

    /// Fetch the server's metrics registry as Prometheus text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send(&Frame::metrics())?;
        let frame = self.recv()?;
        match frame.op.as_str() {
            "metrics_report" => frame
                .data
                .ok_or_else(|| ClientError::Protocol("metrics_report frame without data".into())),
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected metrics_report, got `{other}`"
            ))),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::shutdown())?;
        let frame = self.recv()?;
        match frame.op.as_str() {
            "bye" => Ok(()),
            "error" => Err(error_frame(frame)),
            other => Err(ClientError::Protocol(format!(
                "expected bye, got `{other}`"
            ))),
        }
    }
}
