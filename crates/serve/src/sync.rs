//! Poison-recovering mutex acquisition for the daemon's shared state.
//!
//! A poisoned mutex means some holder panicked. Both structures this
//! crate guards — the admission counters and the model-cache LRU list —
//! are only ever mutated inside a single short critical section that
//! keeps them internally consistent at every step, so the data behind a
//! poisoned lock is still valid. A resident multi-tenant daemon must
//! keep answering the other connections rather than escalate one
//! request's panic into a `PoisonError` panic on every subsequent
//! request, so we take the data and move on.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_after_a_panicked_holder() {
        let m = Mutex::new(7u32);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().expect("first lock");
            panic!("poison it");
        }));
        assert!(caught.is_err());
        assert!(m.lock().is_err(), "mutex is poisoned");
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }
}
