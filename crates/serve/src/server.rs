//! The resident daemon: accept loop, per-connection workers, request
//! execution.
//!
//! One [`Server`] owns the listening socket plus the shared serving state
//! — the [`ModelCache`] of loaded runs, the [`AdmissionController`], and
//! the drain flag. Each accepted connection gets its own worker thread
//! that reads request frames in a loop; simulation itself additionally
//! fans out across the engine's persistent worker pool, all requests
//! sharing **one** `Arc`-held model per run-id.
//!
//! # Fault points
//!
//! - `serve.accept` — evaluated per accepted connection; an injected
//!   error drops the connection before any frame is exchanged.
//! - `serve.request.decode` — evaluated per decoded request frame (arg =
//!   the `op`); an injected error yields a typed `decode` error frame and
//!   the connection stays usable.
//! - `serve.generate.unit` — evaluated per emitted work unit (arg =
//!   `t:<t> chunk:<c>`); an injected error fails the request with a typed
//!   `internal` error frame, an injected panic is caught at the request
//!   boundary. Either way the daemon and all concurrent requests survive.
//! - `serve.status` — evaluated while assembling a `status` report; an
//!   injected error answers a typed `internal` frame and the connection
//!   (and daemon) stay usable.
//!
//! # Drain
//!
//! `SIGTERM`/`SIGINT` (via [`crate::signal`]), a `shutdown` request
//! frame, or [`ServerHandle::shutdown`] put the server in *draining*
//! mode: new connections and new requests are refused with typed
//! `shutdown` error frames, in-flight requests run to completion, then
//! [`Server::run`] returns its [`ServeReport`].

use crate::admission::AdmissionController;
use crate::cache::{CacheError, ModelCache};
use crate::net::{Conn, Listener};
use crate::protocol::{kind, read_frame, write_frame, Frame};
use crate::signal;
use crate::telemetry::{self, CacheCounters, ResidentModel, StatusReport};
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tg_graph::sink::{EdgeSink, GraphSink, StatsSink};
use tg_graph::{TemporalEdge, Time};
use tgae::SharedRun;

/// Produces the [`SharedRun`] for a run-id on a cache miss (typically by
/// reading a `tgx-cli` run directory off disk).
pub type Loader = Box<dyn Fn(&str) -> Result<SharedRun, String> + Send + Sync>;

/// Server tuning knobs. `Default` is sized for tests and small
/// deployments; the CLI exposes the interesting ones as flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Resident models kept loaded (LRU beyond this).
    pub cache_capacity: usize,
    /// In-flight cost budget for admission control (see
    /// [`CostEstimate`](tgae::CostEstimate)).
    pub max_cost: u64,
    /// Edge rows buffered per `edges` frame.
    pub batch_edges: usize,
    /// Accept-loop poll interval while idle.
    pub poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_capacity: 4,
            max_cost: 1 << 24,
            batch_edges: 4096,
            poll: Duration::from_millis(5),
        }
    }
}

/// What [`Server::run`] reports after a clean drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests answered successfully over the server's lifetime.
    pub requests_served: u64,
}

struct SharedState {
    cache: ModelCache<SharedRun>,
    admission: AdmissionController,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
}

impl SharedState {
    fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::termination_requested()
    }

    /// Assemble the `status` payload from live state plus the metrics
    /// registry (the per-run counters live only there).
    fn status_report(&self) -> StatusReport {
        let (inflight_cost, inflight_requests) = self.admission.inflight();
        let cs = self.cache.stats();
        StatusReport {
            draining: self.is_draining(),
            requests_served: self.served.load(Ordering::SeqCst),
            active_requests: self.active.load(Ordering::SeqCst) as u64,
            inflight_cost,
            inflight_requests: inflight_requests as u64,
            max_cost: self.admission.max_cost(),
            admission_rejected: self.admission.rejected(),
            cache_capacity: self.cache.capacity() as u64,
            cache: CacheCounters {
                hits: cs.hits,
                misses: cs.misses,
                evictions: cs.evictions,
                saturations: cs.saturations,
            },
            resident: self
                .cache
                .resident_detailed()
                .into_iter()
                .map(|(run_id, pinned)| ResidentModel { run_id, pinned })
                .collect(),
            runs: telemetry::runs_from_registry(),
        }
    }
}

/// A bound, not-yet-running server. Call [`Server::run`] to serve until
/// drained.
pub struct Server {
    listener: Listener,
    shared: Arc<SharedState>,
}

/// A cloneable handle for observing and stopping a running server from
/// another thread (tests drive in-process servers through this).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<SharedState>,
}

impl ServerHandle {
    /// Ask the server to drain and exit (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests currently executing.
    pub fn active_requests(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Requests answered successfully so far.
    pub fn requests_served(&self) -> u64 {
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Whether the server is refusing new work.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }
}

impl Server {
    fn assemble(listener: Listener, loader: Loader, cfg: ServeConfig) -> Server {
        let shared = Arc::new(SharedState {
            cache: ModelCache::new(cfg.cache_capacity, move |id: &str| loader(id)),
            admission: AdmissionController::new(cfg.max_cost),
            cfg,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
        });
        Server { listener, shared }
    }

    /// Bind a TCP endpoint (`"127.0.0.1:0"` picks an ephemeral port —
    /// read it back with [`Server::tcp_addr`]).
    pub fn bind_tcp(addr: &str, loader: Loader, cfg: ServeConfig) -> io::Result<Server> {
        Ok(Server::assemble(Listener::bind_tcp(addr)?, loader, cfg))
    }

    /// Bind a Unix-domain socket path (removed again on shutdown).
    #[cfg(unix)]
    pub fn bind_unix(
        path: &std::path::Path,
        loader: Loader,
        cfg: ServeConfig,
    ) -> io::Result<Server> {
        Ok(Server::assemble(Listener::bind_unix(path)?, loader, cfg))
    }

    /// The bound TCP address (None for Unix sockets).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.listener.tcp_addr()
    }

    /// Human-readable endpoint (address or socket path).
    pub fn endpoint(&self) -> String {
        self.listener.endpoint()
    }

    /// A handle for stopping/observing this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until drained. Returns after a `shutdown` request,
    /// [`ServerHandle::shutdown`], or a termination signal — once every
    /// in-flight request has completed.
    pub fn run(self) -> io::Result<ServeReport> {
        // A resident daemon IS a metrics sink by definition: arm the
        // obs stopwatch so request latencies land in the registry.
        tg_obs::enable_metrics();
        let Server { listener, shared } = self;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let draining = shared.is_draining();
            match listener.accept_nonblocking() {
                Ok(Some(mut conn)) => {
                    // Direct eval (not the `fail_point!` macro): an injected
                    // accept failure must drop this one connection, never
                    // propagate out of the accept loop.
                    if tg_faults::eval("serve.accept", None).is_err() {
                        continue;
                    }
                    if draining {
                        let _ = write_frame(
                            &mut conn,
                            &Frame::error(kind::SHUTDOWN, "server is draining"),
                        );
                        continue;
                    }
                    let worker_shared = Arc::clone(&shared);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(conn, worker_shared)
                    }));
                    workers.retain(|h| !h.is_finished());
                }
                Ok(None) => {
                    if draining && shared.active.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    std::thread::sleep(shared.cfg.poll);
                }
                Err(_) => std::thread::sleep(shared.cfg.poll),
            }
        }
        // Workers past this point are either writing drain refusals or
        // blocked reading an idle connection; in-flight *requests* are
        // already done (active == 0), so don't join — an idle client
        // holding its connection open must not stall shutdown.
        drop(workers);
        Ok(ServeReport {
            requests_served: shared.served.load(Ordering::SeqCst),
        })
    }
}

/// Pins one executing request in the active counter (RAII).
struct ActiveGuard<'a>(&'a AtomicUsize);

impl<'a> ActiveGuard<'a> {
    fn new(counter: &'a AtomicUsize) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        ActiveGuard(counter)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(mut conn: Conn, shared: Arc<SharedState>) {
    loop {
        let frame = match read_frame(&mut conn) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(e) => {
                let _ = write_frame(&mut conn, &Frame::error(kind::DECODE, e.to_string()));
                return;
            }
        };
        // Pin BEFORE the drain check: once a request is past this line the
        // accept loop's `active == 0` drain test cannot miss it.
        let _active = ActiveGuard::new(&shared.active);
        if shared.is_draining() {
            let _ = write_frame(
                &mut conn,
                &Frame::error(kind::SHUTDOWN, "server is draining"),
            );
            return;
        }
        if let Err(e) = tg_faults::eval("serve.request.decode", Some(frame.op.as_str())) {
            // Typed refusal; the framing is intact, so the connection
            // stays usable and a retry on it can succeed.
            if write_frame(&mut conn, &Frame::error(kind::DECODE, e.to_string())).is_err() {
                return;
            }
            continue;
        }
        match frame.op.as_str() {
            "ping" => {
                if write_frame(&mut conn, &Frame::pong()).is_err() {
                    return;
                }
            }
            "shutdown" => {
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut conn, &Frame::bye());
                return;
            }
            "simulate" | "eval" => match handle_request(&mut conn, &shared, &frame) {
                Ok(true) => {}
                Ok(false) | Err(_) => return,
            },
            "status" => {
                // An introspection failure (injected here) must answer
                // typed on this connection and leave the daemon — and
                // every data-plane request — untouched.
                let response = match tg_faults::eval("serve.status", None) {
                    Err(e) => Frame::error(kind::INTERNAL, e.to_string()),
                    Ok(()) => match serde_json::to_string(&shared.status_report()) {
                        Ok(json) => Frame::status_report(json),
                        Err(e) => Frame::error(kind::INTERNAL, e.to_string()),
                    },
                };
                if write_frame(&mut conn, &response).is_err() {
                    return;
                }
            }
            "metrics" => {
                let text = tg_obs::Registry::global().render_prometheus();
                if write_frame(&mut conn, &Frame::metrics_report(text)).is_err() {
                    return;
                }
            }
            other => {
                let op = other.to_string();
                if write_frame(
                    &mut conn,
                    &Frame::error(kind::DECODE, format!("unknown op `{op}`")),
                )
                .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Execute one admitted `simulate`/`eval` request. `Ok(true)` means the
/// connection may serve further requests; `Ok(false)` means it must close
/// (a response stream was torn mid-flight).
fn handle_request(conn: &mut Conn, shared: &SharedState, frame: &Frame) -> io::Result<bool> {
    let stopwatch = tg_obs::Stopwatch::start();
    let run_id = match frame.run_id.as_deref() {
        Some(id) => id,
        None => {
            write_frame(
                conn,
                &Frame::error(kind::DECODE, "request is missing `run_id`"),
            )?;
            return Ok(true);
        }
    };
    let (run, outcome) = match shared.cache.get(run_id) {
        Ok(hit) => hit,
        Err(e @ CacheError::Load { .. }) => {
            write_frame(conn, &Frame::error(kind::NOT_FOUND, e.to_string()))?;
            return Ok(true);
        }
        Err(e @ CacheError::Saturated { .. }) => {
            write_frame(conn, &Frame::error(kind::BUSY, e.to_string()))?;
            return Ok(true);
        }
    };
    let est = run.cost_estimate();
    let _permit = match shared.admission.try_admit(est.cost) {
        Ok(permit) => permit,
        Err(rejection) => {
            write_frame(conn, &Frame::error(kind::BUSY, rejection.to_string()))?;
            return Ok(true);
        }
    };
    write_frame(conn, &Frame::start(est, outcome.as_str()))?;

    let seed = frame
        .seed
        .unwrap_or_else(|| run.seed_policy().simulation_master(0));
    let want_stats = frame.stats == Some(true);
    let is_eval = frame.op == "eval";
    let batch_edges = shared.cfg.batch_edges;
    // The panic boundary: an engine bug or an injected
    // `serve.generate.unit=panic` fault unwinds to here and becomes a
    // typed `internal` error frame — the daemon and every concurrent
    // request keep going.
    let executed = catch_unwind(AssertUnwindSafe(|| -> Result<Frame, String> {
        if is_eval {
            let shape = (run.observed().n_nodes(), run.observed().n_timestamps());
            let sink = FaultGate::new(GraphSink::new(shape.0, shape.1));
            let synthetic = run
                .simulate_seeded(seed, sink)
                .map_err(|e| e.to_string())??;
            let scores = run.evaluate(&synthetic).map_err(|e| e.to_string())?;
            Ok(Frame::scores(scores))
        } else if want_stats {
            let sink = FaultGate::new(StatsSink::new(run.observed().n_timestamps()));
            let stats = run
                .simulate_seeded(seed, sink)
                .map_err(|e| e.to_string())??;
            let json = serde_json::to_string(&stats).map_err(|e| e.to_string())?;
            Ok(Frame::stats_summary(json, stats.n_edges()))
        } else {
            let bytes_counter = tg_obs::counter!("serve.bytes", run = run_id);
            let sink = FaultGate::new(FrameSink::new(conn, batch_edges, bytes_counter));
            let streamed = run
                .simulate_seeded(seed, sink)
                .map_err(|e| e.to_string())??;
            let n_edges = streamed.map_err(|e| format!("stream write failed: {e}"))?;
            Ok(Frame::done(n_edges))
        }
    }));
    match executed {
        Ok(Ok(response)) => {
            write_frame(conn, &response)?;
            shared.served.fetch_add(1, Ordering::SeqCst);
            tg_obs::counter!("serve.requests", run = run_id).inc();
            // Cold/warm split: a miss paid the model load, a hit is
            // pure generation time.
            let latency = tg_obs::histogram!(
                "serve.request.seconds",
                tg_obs::LATENCY_SECONDS,
                cache = outcome.as_str()
            );
            stopwatch.observe(&latency);
            Ok(true)
        }
        Ok(Err(message)) => {
            // Edge frames may already be on the wire: answer typed, then
            // close so the client never mistakes a partial stream for a
            // complete one.
            let _ = write_frame(conn, &Frame::error(kind::INTERNAL, message));
            Ok(false)
        }
        Err(panic) => {
            // `as_ref`, not `&panic`: a `&Box<dyn Any>` unsize-coerces to
            // the BOX as the `dyn Any`, making every payload downcast miss.
            let message = panic_message(panic.as_ref());
            let _ = write_frame(
                conn,
                &Frame::error(kind::INTERNAL, format!("request panicked: {message}")),
            );
            Ok(false)
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Wraps any [`EdgeSink`] with the `serve.generate.unit` fault point: an
/// injected error marks the request failed (deferred, surfaced by
/// `finish`) and stops feeding the inner sink; an injected panic unwinds
/// to the request boundary.
struct FaultGate<S> {
    inner: S,
    deferred: Option<String>,
}

impl<S> FaultGate<S> {
    fn new(inner: S) -> Self {
        FaultGate {
            inner,
            deferred: None,
        }
    }
}

impl<S: EdgeSink> EdgeSink for FaultGate<S> {
    type Output = Result<S::Output, String>;

    fn accept(&mut self, t: Time, chunk: u32, edges: &[TemporalEdge]) {
        if self.deferred.is_some() {
            return;
        }
        if let Err(e) =
            tg_faults::eval_lazy("serve.generate.unit", || format!("t:{t} chunk:{chunk}"))
        {
            self.deferred = Some(e.to_string());
            return;
        }
        self.inner.accept(t, chunk, edges);
    }

    fn finish(self) -> Result<S::Output, String> {
        match self.deferred {
            Some(message) => Err(message),
            None => Ok(self.inner.finish()),
        }
    }
}

/// Streams accepted units to the connection as `edges` frames, batching
/// `batch_edges` rows per frame. The text payload concatenation is
/// byte-identical to what `StreamingWriterSink` writes in process. Write
/// errors are deferred to `finish` (the [`EdgeSink`] contract has no
/// fallible accept).
struct FrameSink<'a> {
    conn: &'a mut Conn,
    buf: String,
    buffered_rows: usize,
    batch_edges: usize,
    n_edges: u64,
    deferred: Option<io::Error>,
    /// Per-run `serve.bytes` registry counter; counts payload bytes
    /// actually handed to the transport.
    bytes: Arc<tg_obs::Counter>,
}

impl<'a> FrameSink<'a> {
    fn new(conn: &'a mut Conn, batch_edges: usize, bytes: Arc<tg_obs::Counter>) -> Self {
        FrameSink {
            conn,
            buf: String::new(),
            buffered_rows: 0,
            batch_edges: batch_edges.max(1),
            n_edges: 0,
            deferred: None,
            bytes,
        }
    }

    fn flush_batch(&mut self) {
        if self.buffered_rows == 0 || self.deferred.is_some() {
            return;
        }
        let data = std::mem::take(&mut self.buf);
        self.buffered_rows = 0;
        let n = data.len() as u64;
        match write_frame(self.conn, &Frame::edges(data)) {
            Ok(()) => self.bytes.add(n),
            Err(e) => self.deferred = Some(e),
        }
    }
}

impl EdgeSink for FrameSink<'_> {
    type Output = io::Result<u64>;

    fn accept(&mut self, _t: Time, _chunk: u32, edges: &[TemporalEdge]) {
        if self.deferred.is_some() {
            return;
        }
        for e in edges {
            // Must match StreamingWriterSink's row format exactly — the
            // byte-identity contract of the protocol depends on it.
            use std::fmt::Write as _;
            let _ = writeln!(self.buf, "{} {} {}", e.u, e.v, e.t);
            self.buffered_rows += 1;
            self.n_edges += 1;
            if self.buffered_rows >= self.batch_edges {
                self.flush_batch();
            }
        }
    }

    fn finish(mut self) -> io::Result<u64> {
        self.flush_batch();
        match self.deferred {
            Some(e) => Err(e),
            None => {
                self.conn.flush()?;
                Ok(self.n_edges)
            }
        }
    }
}
