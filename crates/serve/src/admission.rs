//! Cost-based admission control: bound in-flight work, reject the rest.
//!
//! Every request is priced before it runs via
//! [`SimulationPlan::cost_estimate`](tgae::SimulationPlan::cost_estimate).
//! The controller admits a request only while the sum of admitted costs
//! stays within `max_cost`; otherwise it returns a typed [`Rejection`]
//! that the server turns into a `busy` error frame (the HTTP-429
//! analogue). Admission is a [`Permit`] — an RAII guard that releases the
//! cost when the request finishes, however it finishes.
//!
//! One exception keeps the server live: when **nothing** is in flight,
//! any request is admitted even if it alone exceeds `max_cost`. A
//! too-small budget must degrade to serial execution, not to starving
//! every oversized tenant forever.

use crate::sync::lock_unpoisoned;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inflight {
    cost: u64,
    requests: usize,
}

/// Why a request was not admitted. Carries the numbers so the client can
/// see exactly how busy the server was.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// The rejected request's estimated cost.
    pub requested: u64,
    /// Cost of the work already in flight.
    pub inflight_cost: u64,
    /// Number of requests already in flight.
    pub inflight_requests: usize,
    /// The configured budget.
    pub max_cost: u64,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "server busy: request cost {} does not fit the in-flight budget ({} used by {} request(s), max {})",
            self.requested, self.inflight_cost, self.inflight_requests, self.max_cost
        )
    }
}

impl std::error::Error for Rejection {}

/// Admits requests while total in-flight cost fits `max_cost`.
#[derive(Debug)]
pub struct AdmissionController {
    max_cost: u64,
    inflight: Mutex<Inflight>,
    rejected: AtomicU64,
}

impl AdmissionController {
    /// Controller with the given in-flight cost budget.
    pub fn new(max_cost: u64) -> Self {
        AdmissionController {
            max_cost,
            inflight: Mutex::new(Inflight::default()),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    pub fn max_cost(&self) -> u64 {
        self.max_cost
    }

    /// Requests this controller has busy-rejected over its lifetime.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The global-registry mirrors, fetched fresh per update: the
    /// controller is created before any registry user and mutates
    /// rarely (per request, not per work unit), so interning cost is
    /// irrelevant next to keeping this struct free of obs handles in
    /// its `Debug` surface.
    fn gauges() -> (Arc<tg_obs::Gauge>, Arc<tg_obs::Gauge>) {
        let reg = tg_obs::Registry::global();
        (
            reg.gauge("serve.inflight.cost", &[]),
            reg.gauge("serve.inflight.requests", &[]),
        )
    }

    fn publish(cost: u64, requests: usize) {
        let (g_cost, g_reqs) = Self::gauges();
        g_cost.set(cost as f64);
        g_reqs.set(requests as f64);
    }

    /// Currently admitted (cost, request-count).
    pub fn inflight(&self) -> (u64, usize) {
        let g = lock_unpoisoned(&self.inflight);
        (g.cost, g.requests)
    }

    /// Admit a request of estimated `cost`, or explain why not. Drop the
    /// returned [`Permit`] to release the admission.
    pub fn try_admit(&self, cost: u64) -> Result<Permit<'_>, Rejection> {
        let mut g = lock_unpoisoned(&self.inflight);
        if g.requests > 0 && g.cost.saturating_add(cost) > self.max_cost {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            tg_obs::counter!("serve.admission.rejected").inc();
            return Err(Rejection {
                requested: cost,
                inflight_cost: g.cost,
                inflight_requests: g.requests,
                max_cost: self.max_cost,
            });
        }
        g.cost = g.cost.saturating_add(cost);
        g.requests += 1;
        Self::publish(g.cost, g.requests);
        Ok(Permit {
            controller: self,
            cost,
        })
    }

    fn release(&self, cost: u64) {
        let mut g = lock_unpoisoned(&self.inflight);
        g.cost = g.cost.saturating_sub(cost);
        g.requests = g.requests.saturating_sub(1);
        Self::publish(g.cost, g.requests);
    }
}

/// An admitted request's hold on the cost budget; released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    controller: &'a AdmissionController,
    cost: u64,
}

impl Permit<'_> {
    /// The cost this permit holds.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.controller.release(self.cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_within_budget_and_rejects_beyond_it() {
        let ctl = AdmissionController::new(100);
        let a = ctl.try_admit(60).unwrap();
        let b = ctl.try_admit(40).unwrap();
        assert_eq!(ctl.inflight(), (100, 2));
        let rej = ctl.try_admit(1).unwrap_err();
        assert_eq!(ctl.rejected(), 1);
        assert_eq!(rej.requested, 1);
        assert_eq!(rej.inflight_cost, 100);
        assert_eq!(rej.inflight_requests, 2);
        assert_eq!(rej.max_cost, 100);
        assert!(rej.to_string().contains("server busy"));
        drop(a);
        drop(b);
        assert_eq!(ctl.inflight(), (0, 0));
    }

    #[test]
    fn dropping_a_permit_releases_its_cost() {
        let ctl = AdmissionController::new(50);
        let p = ctl.try_admit(50).unwrap();
        assert!(ctl.try_admit(10).is_err());
        drop(p);
        ctl.try_admit(10).unwrap();
    }

    #[test]
    fn an_idle_server_admits_even_an_oversized_request() {
        let ctl = AdmissionController::new(10);
        let p = ctl.try_admit(1_000_000).unwrap();
        assert_eq!(p.cost(), 1_000_000);
        // …but while it runs, everything else is busy-rejected.
        assert!(ctl.try_admit(1).is_err());
    }
}
