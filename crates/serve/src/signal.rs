//! Graceful-drain signal handling without any external crate.
//!
//! `SIGTERM` / `SIGINT` must not kill the daemon mid-stream: the handler
//! only flips an [`AtomicBool`]; the accept loop notices it, refuses new
//! connections with a typed `shutdown` error frame, lets in-flight
//! requests finish, and exits 0. Setting a flag is one of the few things
//! that is async-signal-safe, which is why the handler does nothing else.
//!
//! The registration goes through the raw libc `signal(2)` symbol (already
//! linked into every Rust binary) so no new dependency is needed.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal (or [`request_termination`]) has asked the
/// server to drain.
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving `SIGTERM` (used by tests and by
/// the `shutdown` protocol request path).
pub fn request_termination() {
    TERMINATE.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TERMINATE;
    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: c_int) {
        // Async-signal-safe: a single atomic store, nothing else.
        TERMINATE.store(true, Ordering::SeqCst);
    }

    pub fn install_handlers() {
        let handler = on_term as *const () as usize;
        // SAFETY: libc `signal` with a handler that is itself
        // async-signal-safe (a single atomic store); replacing the
        // disposition for SIGTERM/SIGINT has no memory-safety
        // preconditions beyond passing a valid function pointer.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_handlers() {}
}

/// Install the `SIGTERM`/`SIGINT` drain handlers (no-op off unix).
/// Idempotent; call once at server start.
pub fn install_handlers() {
    imp::install_handlers();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_termination_flips_the_flag() {
        // Note: the flag is process-global, so this test never *unsets* it
        // from another test's perspective; it only ever observes its own set.
        install_handlers();
        request_termination();
        assert!(termination_requested());
    }
}
