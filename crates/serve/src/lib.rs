#![warn(missing_docs)]
//! `tg-serve`: the resident multi-tenant simulation service.
//!
//! A `tgx-cli train` run produces a run directory; this crate serves any
//! number of such runs from one long-lived daemon so repeated
//! simulate/evaluate requests stop paying model-load time. The pieces:
//!
//! - [`protocol`] — length-prefixed JSON frames over TCP or a Unix
//!   socket; edge streams are byte-identical to in-process
//!   `StreamingWriterSink` output.
//! - [`cache`] — a bounded LRU of loaded [`SharedRun`](tgae::SharedRun)s;
//!   every concurrent request for a run-id shares **one** `Arc`-held
//!   model (no per-request clone).
//! - [`admission`] — cost-based admission control priced by
//!   [`SimulationPlan::cost_estimate`](tgae::SimulationPlan::cost_estimate);
//!   over-budget requests get a typed `busy` rejection.
//! - [`server`] — the accept loop, per-connection workers, the
//!   `serve.accept` / `serve.request.decode` / `serve.generate.unit`
//!   fault points, and graceful drain.
//! - [`client`] — the blocking client the CLI, tests, and benchmarks use.
//! - [`telemetry`] — the `status`/`metrics` introspection ops' report
//!   types, fed by the global [`tg_obs`] metrics registry.
//! - [`signal`] — `SIGTERM`/`SIGINT` → drain, with no external crate.
//!
//! ```no_run
//! use tg_serve::{Client, ServeConfig, Server};
//!
//! let loader = Box::new(|run_id: &str| {
//!     Err(format!("no run directory for `{run_id}` in this example"))
//! });
//! let server = Server::bind_tcp("127.0.0.1:0", loader, ServeConfig::default()).unwrap();
//! let addr = server.tcp_addr().unwrap().to_string();
//! let handle = server.handle();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect_tcp(&addr).unwrap();
//! client.ping().unwrap();
//! handle.shutdown();
//! thread.join().unwrap().unwrap();
//! ```

pub mod admission;
pub mod cache;
pub mod client;
mod net;
pub mod protocol;
pub mod server;
pub mod signal;
mod sync;
pub mod telemetry;

pub use admission::{AdmissionController, Permit, Rejection};
pub use cache::{CacheError, CacheOutcome, CacheStats, ModelCache};
pub use client::{Client, ClientError, SimulateOutcome, StatsOutcome};
pub use protocol::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
pub use server::{Loader, ServeConfig, ServeReport, Server, ServerHandle};
pub use telemetry::{CacheCounters, ResidentModel, RunCounters, StatusReport};
