//! The LRU model cache: loaded runs keyed by run-id, shared via `Arc`.
//!
//! Loading a run (model JSON + observed edge list off disk) is the
//! expensive part of serving a request — the whole point of a resident
//! server is to pay it once. The cache keeps up to `capacity` loaded
//! values, hands every requester an [`Arc`] alias of the **same**
//! instance (never a copy), and evicts least-recently-used entries when
//! full — but only entries that are *idle*: an entry whose `Arc` is still
//! held by an in-flight request is pinned, and if every resident entry is
//! pinned the miss is refused as [`CacheError::Saturated`] (the server
//! maps that to a typed `busy` rejection rather than unbounded growth).
//!
//! Loads run **outside** the lock (they hit the disk); if two threads
//! miss the same id concurrently, the first insert wins and the loser
//! adopts the winner's `Arc`, so there is always exactly one resident
//! instance per id.
//!
//! Invariants (property-tested in `tests/cache_props.rs`):
//!
//! - resident entries never exceed `capacity`;
//! - a hit returns the same `Arc` as the previous `get` of that id;
//! - only idle entries are ever evicted.

use crate::sync::lock_unpoisoned;
use std::sync::{Arc, Mutex};

/// Whether a `get` found the value resident or had to load it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was resident; no load ran.
    Hit,
    /// The value was loaded (this request paid the disk cost).
    Miss,
}

impl CacheOutcome {
    /// Wire spelling (`"hit"` / `"miss"`) for `start` frames.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Why a `get` failed.
#[derive(Debug)]
pub enum CacheError {
    /// The loader could not produce a value for this id (unknown run,
    /// unreadable run directory, shape mismatch, …).
    Load {
        /// The requested id.
        run_id: String,
        /// The loader's diagnosis.
        message: String,
    },
    /// The cache is full and every resident entry is held by an in-flight
    /// request — admitting this load would grow memory past the
    /// configured bound. A `429`-style condition: retry later.
    Saturated {
        /// The configured capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Load { run_id, message } => {
                write!(f, "cannot load run `{run_id}`: {message}")
            }
            CacheError::Saturated { capacity } => write!(
                f,
                "model cache saturated: all {capacity} resident models are serving in-flight requests"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

/// The fallible value loader a [`ModelCache`] fills misses through.
pub type CacheLoader<T> = Box<dyn Fn(&str) -> Result<T, String> + Send + Sync>;

/// A bounded, thread-safe LRU cache of `Arc<T>` values produced by a
/// fallible loader. See the [module docs](self) for the contract.
pub struct ModelCache<T> {
    capacity: usize,
    loader: CacheLoader<T>,
    /// Most-recently-used first.
    entries: Mutex<Vec<(String, Arc<T>)>>,
}

impl<T> ModelCache<T> {
    /// Cache holding at most `capacity` (≥ 1) values, filling misses
    /// through `loader`.
    pub fn new(
        capacity: usize,
        loader: impl Fn(&str) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        assert!(capacity >= 1, "cache capacity must be >= 1");
        ModelCache {
            capacity,
            loader: Box::new(loader),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entry count (≤ capacity).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.entries).len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `run_id` is currently resident (does not touch LRU order).
    pub fn contains(&self, run_id: &str) -> bool {
        lock_unpoisoned(&self.entries)
            .iter()
            .any(|(id, _)| id == run_id)
    }

    /// Resident ids, most-recently-used first.
    pub fn resident(&self) -> Vec<String> {
        lock_unpoisoned(&self.entries)
            .iter()
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Fetch `run_id`, loading it on a miss. The returned `Arc` aliases
    /// the single resident instance; holding it pins the entry against
    /// eviction.
    pub fn get(&self, run_id: &str) -> Result<(Arc<T>, CacheOutcome), CacheError> {
        {
            let mut entries = lock_unpoisoned(&self.entries);
            if let Some(pos) = entries.iter().position(|(id, _)| id == run_id) {
                let entry = entries.remove(pos);
                let arc = Arc::clone(&entry.1);
                entries.insert(0, entry);
                return Ok((arc, CacheOutcome::Hit));
            }
        }
        // Miss: load outside the lock — loads hit the disk, and a slow
        // load must not block hits on other ids.
        let loaded = (self.loader)(run_id).map_err(|message| CacheError::Load {
            run_id: run_id.to_string(),
            message,
        })?;
        let mut entries = lock_unpoisoned(&self.entries);
        if let Some(pos) = entries.iter().position(|(id, _)| id == run_id) {
            // A concurrent miss won the insert race; adopt its instance so
            // exactly one copy stays resident. This request still paid a
            // load, so it reports Miss.
            let entry = entries.remove(pos);
            let arc = Arc::clone(&entry.1);
            entries.insert(0, entry);
            return Ok((arc, CacheOutcome::Miss));
        }
        if entries.len() >= self.capacity {
            // Evict the least-recently-used *idle* entry. strong_count == 1
            // means the cache holds the only reference — no in-flight
            // request is using it.
            match entries
                .iter()
                .rposition(|(_, arc)| Arc::strong_count(arc) == 1)
            {
                Some(pos) => {
                    entries.remove(pos);
                }
                None => {
                    return Err(CacheError::Saturated {
                        capacity: self.capacity,
                    })
                }
            }
        }
        let arc = Arc::new(loaded);
        entries.insert(0, (run_id.to_string(), Arc::clone(&arc)));
        Ok((arc, CacheOutcome::Miss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_cache(capacity: usize) -> (Arc<AtomicUsize>, ModelCache<String>) {
        let loads = Arc::new(AtomicUsize::new(0));
        let loads2 = Arc::clone(&loads);
        let cache = ModelCache::new(capacity, move |id: &str| {
            loads2.fetch_add(1, Ordering::SeqCst);
            if id == "missing" {
                Err("no such run".into())
            } else {
                Ok(format!("model:{id}"))
            }
        });
        (loads, cache)
    }

    #[test]
    fn hit_returns_the_same_arc_without_reloading() {
        let (loads, cache) = counting_cache(2);
        let (a, o1) = cache.get("r").unwrap();
        let (b, o2) = cache.get("r").unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(loads.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_idle_entry() {
        let (_, cache) = counting_cache(2);
        drop(cache.get("a").unwrap());
        drop(cache.get("b").unwrap());
        drop(cache.get("a").unwrap()); // a is now the warmest
        drop(cache.get("c").unwrap()); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.contains("a"));
        assert!(cache.contains("c"));
        assert!(!cache.contains("b"));
        assert_eq!(cache.resident(), vec!["c".to_string(), "a".to_string()]);
    }

    #[test]
    fn held_entries_are_pinned_and_saturation_is_typed() {
        let (_, cache) = counting_cache(1);
        let (held, _) = cache.get("a").unwrap();
        let err = cache.get("b").unwrap_err();
        assert!(
            matches!(err, CacheError::Saturated { capacity: 1 }),
            "{err}"
        );
        assert!(cache.contains("a"), "pinned entry must not be evicted");
        drop(held);
        // idle now: the eviction goes through
        cache.get("b").unwrap();
        assert!(cache.contains("b"));
        assert!(!cache.contains("a"));
    }

    #[test]
    fn loader_failure_is_typed_and_caches_nothing() {
        let (loads, cache) = counting_cache(2);
        let err = cache.get("missing").unwrap_err();
        assert!(matches!(err, CacheError::Load { .. }), "{err}");
        assert!(err.to_string().contains("missing"));
        assert!(cache.is_empty());
        // failures are not negative-cached: the loader runs again
        let _ = cache.get("missing");
        assert_eq!(loads.load(Ordering::SeqCst), 2);
    }
}
