//! The LRU model cache: loaded runs keyed by run-id, shared via `Arc`.
//!
//! Loading a run (model JSON + observed edge list off disk) is the
//! expensive part of serving a request — the whole point of a resident
//! server is to pay it once. The cache keeps up to `capacity` loaded
//! values, hands every requester an [`Arc`] alias of the **same**
//! instance (never a copy), and evicts least-recently-used entries when
//! full — but only entries that are *idle*: an entry whose `Arc` is still
//! held by an in-flight request is pinned, and if every resident entry is
//! pinned the miss is refused as [`CacheError::Saturated`] (the server
//! maps that to a typed `busy` rejection rather than unbounded growth).
//!
//! Loads run **outside** the lock (they hit the disk); if two threads
//! miss the same id concurrently, the first insert wins and the loser
//! adopts the winner's `Arc`, so there is always exactly one resident
//! instance per id.
//!
//! Invariants (property-tested in `tests/cache_props.rs`):
//!
//! - resident entries never exceed `capacity`;
//! - a hit returns the same `Arc` as the previous `get` of that id;
//! - only idle entries are ever evicted.

use crate::sync::lock_unpoisoned;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether a `get` found the value resident or had to load it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was resident; no load ran.
    Hit,
    /// The value was loaded (this request paid the disk cost).
    Miss,
}

impl CacheOutcome {
    /// Wire spelling (`"hit"` / `"miss"`) for `start` frames.
    pub fn as_str(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Why a `get` failed.
#[derive(Debug)]
pub enum CacheError {
    /// The loader could not produce a value for this id (unknown run,
    /// unreadable run directory, shape mismatch, …).
    Load {
        /// The requested id.
        run_id: String,
        /// The loader's diagnosis.
        message: String,
    },
    /// The cache is full and every resident entry is held by an in-flight
    /// request — admitting this load would grow memory past the
    /// configured bound. A `429`-style condition: retry later.
    Saturated {
        /// The configured capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Load { run_id, message } => {
                write!(f, "cannot load run `{run_id}`: {message}")
            }
            CacheError::Saturated { capacity } => write!(
                f,
                "model cache saturated: all {capacity} resident models are serving in-flight requests"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

/// The fallible value loader a [`ModelCache`] fills misses through.
pub type CacheLoader<T> = Box<dyn Fn(&str) -> Result<T, String> + Send + Sync>;

/// Lifetime totals of one cache instance (see [`ModelCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found the value resident.
    pub hits: u64,
    /// `get` calls that paid a load.
    pub misses: u64,
    /// Idle entries evicted to make room.
    pub evictions: u64,
    /// Misses refused because every resident entry was pinned.
    pub saturations: u64,
}

/// Instance counters plus their global-registry mirrors. The instance
/// side is the source of truth for [`ModelCache::stats`] (tests and
/// the `status` frame get exact per-cache numbers); the mirrors make
/// the same events visible to `metrics` scrapes as
/// `serve.cache.{hit,miss,eviction,saturation}`.
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    saturations: AtomicU64,
    g_hits: Arc<tg_obs::Counter>,
    g_misses: Arc<tg_obs::Counter>,
    g_evictions: Arc<tg_obs::Counter>,
    g_saturations: Arc<tg_obs::Counter>,
}

impl Counters {
    fn new() -> Counters {
        let reg = tg_obs::Registry::global();
        Counters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            saturations: AtomicU64::new(0),
            g_hits: reg.counter("serve.cache.hit", &[]),
            g_misses: reg.counter("serve.cache.miss", &[]),
            g_evictions: reg.counter("serve.cache.eviction", &[]),
            g_saturations: reg.counter("serve.cache.saturation", &[]),
        }
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.g_hits.inc();
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.g_misses.inc();
    }

    fn eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.g_evictions.inc();
    }

    fn saturation(&self) {
        self.saturations.fetch_add(1, Ordering::Relaxed);
        self.g_saturations.inc();
    }
}

/// A bounded, thread-safe LRU cache of `Arc<T>` values produced by a
/// fallible loader. See the [module docs](self) for the contract.
pub struct ModelCache<T> {
    capacity: usize,
    loader: CacheLoader<T>,
    /// Most-recently-used first.
    entries: Mutex<Vec<(String, Arc<T>)>>,
    counters: Counters,
}

impl<T> ModelCache<T> {
    /// Cache holding at most `capacity` (≥ 1) values, filling misses
    /// through `loader`.
    pub fn new(
        capacity: usize,
        loader: impl Fn(&str) -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        assert!(capacity >= 1, "cache capacity must be >= 1");
        ModelCache {
            capacity,
            loader: Box::new(loader),
            entries: Mutex::new(Vec::new()),
            counters: Counters::new(),
        }
    }

    /// This cache's lifetime hit/miss/eviction/saturation totals. The
    /// same events are mirrored into the global metrics registry as
    /// `serve.cache.*` counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            saturations: self.counters.saturations.load(Ordering::Relaxed),
        }
    }

    /// Resident ids with their pinned state, most-recently-used first.
    /// An entry is *pinned* while any in-flight request still holds its
    /// `Arc` (strong count above the cache's own reference).
    pub fn resident_detailed(&self) -> Vec<(String, bool)> {
        lock_unpoisoned(&self.entries)
            .iter()
            .map(|(id, arc)| (id.clone(), Arc::strong_count(arc) > 1))
            .collect()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entry count (≤ capacity).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.entries).len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `run_id` is currently resident (does not touch LRU order).
    pub fn contains(&self, run_id: &str) -> bool {
        lock_unpoisoned(&self.entries)
            .iter()
            .any(|(id, _)| id == run_id)
    }

    /// Resident ids, most-recently-used first.
    pub fn resident(&self) -> Vec<String> {
        lock_unpoisoned(&self.entries)
            .iter()
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Fetch `run_id`, loading it on a miss. The returned `Arc` aliases
    /// the single resident instance; holding it pins the entry against
    /// eviction.
    pub fn get(&self, run_id: &str) -> Result<(Arc<T>, CacheOutcome), CacheError> {
        {
            let mut entries = lock_unpoisoned(&self.entries);
            if let Some(pos) = entries.iter().position(|(id, _)| id == run_id) {
                let entry = entries.remove(pos);
                let arc = Arc::clone(&entry.1);
                entries.insert(0, entry);
                self.counters.hit();
                return Ok((arc, CacheOutcome::Hit));
            }
        }
        // Miss: load outside the lock — loads hit the disk, and a slow
        // load must not block hits on other ids.
        let loaded = (self.loader)(run_id).map_err(|message| CacheError::Load {
            run_id: run_id.to_string(),
            message,
        })?;
        let mut entries = lock_unpoisoned(&self.entries);
        if let Some(pos) = entries.iter().position(|(id, _)| id == run_id) {
            // A concurrent miss won the insert race; adopt its instance so
            // exactly one copy stays resident. This request still paid a
            // load, so it reports Miss.
            let entry = entries.remove(pos);
            let arc = Arc::clone(&entry.1);
            entries.insert(0, entry);
            self.counters.miss();
            return Ok((arc, CacheOutcome::Miss));
        }
        if entries.len() >= self.capacity {
            // Evict the least-recently-used *idle* entry. strong_count == 1
            // means the cache holds the only reference — no in-flight
            // request is using it.
            match entries
                .iter()
                .rposition(|(_, arc)| Arc::strong_count(arc) == 1)
            {
                Some(pos) => {
                    entries.remove(pos);
                    self.counters.eviction();
                }
                None => {
                    self.counters.saturation();
                    return Err(CacheError::Saturated {
                        capacity: self.capacity,
                    });
                }
            }
        }
        let arc = Arc::new(loaded);
        entries.insert(0, (run_id.to_string(), Arc::clone(&arc)));
        self.counters.miss();
        Ok((arc, CacheOutcome::Miss))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_cache(capacity: usize) -> (Arc<AtomicUsize>, ModelCache<String>) {
        let loads = Arc::new(AtomicUsize::new(0));
        let loads2 = Arc::clone(&loads);
        let cache = ModelCache::new(capacity, move |id: &str| {
            loads2.fetch_add(1, Ordering::SeqCst);
            if id == "missing" {
                Err("no such run".into())
            } else {
                Ok(format!("model:{id}"))
            }
        });
        (loads, cache)
    }

    #[test]
    fn hit_returns_the_same_arc_without_reloading() {
        let (loads, cache) = counting_cache(2);
        let (a, o1) = cache.get("r").unwrap();
        let (b, o2) = cache.get("r").unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(loads.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_idle_entry() {
        let (_, cache) = counting_cache(2);
        drop(cache.get("a").unwrap());
        drop(cache.get("b").unwrap());
        drop(cache.get("a").unwrap()); // a is now the warmest
        drop(cache.get("c").unwrap()); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.contains("a"));
        assert!(cache.contains("c"));
        assert!(!cache.contains("b"));
        assert_eq!(cache.resident(), vec!["c".to_string(), "a".to_string()]);
    }

    #[test]
    fn held_entries_are_pinned_and_saturation_is_typed() {
        let (_, cache) = counting_cache(1);
        let (held, _) = cache.get("a").unwrap();
        let err = cache.get("b").unwrap_err();
        assert!(
            matches!(err, CacheError::Saturated { capacity: 1 }),
            "{err}"
        );
        assert!(cache.contains("a"), "pinned entry must not be evicted");
        drop(held);
        // idle now: the eviction goes through
        cache.get("b").unwrap();
        assert!(cache.contains("b"));
        assert!(!cache.contains("a"));
    }

    #[test]
    fn stats_count_hits_misses_evictions_and_saturations() {
        let (_, cache) = counting_cache(1);
        drop(cache.get("a").unwrap()); // miss
        drop(cache.get("a").unwrap()); // hit
        drop(cache.get("b").unwrap()); // miss + eviction of a
        let (held, _) = cache.get("b").unwrap(); // hit, now pinned
        let _ = cache.get("c").unwrap_err(); // saturation
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                evictions: 1,
                saturations: 1,
            }
        );
        assert_eq!(cache.resident_detailed(), vec![("b".to_string(), true)]);
        drop(held);
        assert_eq!(cache.resident_detailed(), vec![("b".to_string(), false)]);
        // loader failures count as neither hit nor miss
        let _ = cache.get("missing");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn loader_failure_is_typed_and_caches_nothing() {
        let (loads, cache) = counting_cache(2);
        let err = cache.get("missing").unwrap_err();
        assert!(matches!(err, CacheError::Load { .. }), "{err}");
        assert!(err.to_string().contains("missing"));
        assert!(cache.is_empty());
        // failures are not negative-cached: the loader runs again
        let _ = cache.get("missing");
        assert_eq!(loads.load(Ordering::SeqCst), 2);
    }
}
