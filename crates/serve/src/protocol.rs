//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one [`Frame`]: a 4-byte
//! big-endian `u32` byte length followed by that many bytes of JSON.
//!
//! ```text
//! ┌──────────────┬──────────────────────────────────────────┐
//! │ u32 BE length │ {"op":"simulate","run_id":"r","seed":9,…} │
//! └──────────────┴──────────────────────────────────────────┘
//! ```
//!
//! One struct covers every message; the `op` field selects the shape and
//! the unused optional fields ride along as `null`. That keeps the
//! vendored serde derive happy (it requires every field present on the
//! wire) and the protocol trivially evolvable — a new optional field is
//! ignored by old readers of the JSON tree.
//!
//! # Conversation shapes
//!
//! ```text
//! client                               server
//! ──────                               ──────
//! simulate{run_id,seed}        →
//!                              ←       start{cost,cache}
//!                              ←       edges{data}          (repeated)
//!                              ←       done{n_edges}
//!
//! simulate{run_id,seed,stats}  →
//!                              ←       start{cost,cache}
//!                              ←       stats{data,n_edges}
//!
//! eval{run_id,seed}            →
//!                              ←       start{cost,cache}
//!                              ←       scores{scores}
//!
//! ping → ← pong        shutdown → ← bye
//!
//! status{}                     →
//!                              ←       status_report{data}  (JSON report)
//! metrics{}                    →
//!                              ←       metrics_report{data} (Prometheus text)
//!
//! any request may instead be answered by
//!                              ←       error{kind,message}
//! ```
//!
//! `edges` frames carry plain `u v t\n` edge-list text; concatenating the
//! `data` payloads of one simulate conversation reproduces, **byte for
//! byte**, what `StreamingWriterSink` would have written in process for
//! the same model and master seed.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use tg_metrics::MetricScore;
use tgae::CostEstimate;

/// Upper bound on one frame's JSON payload. Large enough for any
/// realistic edge batch, small enough that a corrupt length prefix can't
/// make the reader allocate the moon.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Typed error kinds carried by `error` frames ([`Frame::kind`]).
pub mod kind {
    /// Admission control rejected the request (HTTP-429 analogue): the
    /// in-flight cost budget or the model cache is saturated. Retry later.
    pub const BUSY: &str = "busy";
    /// The request frame could not be decoded (or an injected
    /// `serve.request.decode` fault fired). The connection stays usable.
    pub const DECODE: &str = "decode";
    /// The run-id did not resolve to a loadable run directory.
    pub const NOT_FOUND: &str = "not_found";
    /// The request failed mid-execution (engine error or injected
    /// `serve.generate.unit` fault); the stream is torn, reconnect to
    /// retry.
    pub const INTERNAL: &str = "internal";
    /// The server is draining (SIGTERM or a `shutdown` request) and
    /// refuses new work.
    pub const SHUTDOWN: &str = "shutdown";
}

/// One protocol message; see the [module docs](self) for the shapes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Frame {
    /// Message type: `simulate` / `eval` / `ping` / `status` /
    /// `metrics` / `shutdown` requests, `start` / `edges` / `stats` /
    /// `done` / `scores` / `status_report` / `metrics_report` / `pong`
    /// / `bye` / `error` responses.
    pub op: String,
    /// Requests: the run directory name to serve.
    pub run_id: Option<String>,
    /// Requests: the engine master seed of this generation.
    pub seed: Option<u64>,
    /// `simulate` requests: return a `stats` summary instead of streaming
    /// edges.
    pub stats: Option<bool>,
    /// `edges` frames: edge-list text; `stats` frames: the JSON-encoded
    /// `GenerationStats`.
    pub data: Option<String>,
    /// `done` / `stats` frames: total edges generated.
    pub n_edges: Option<u64>,
    /// `start` frames: the admission cost the request was priced at.
    pub cost: Option<CostEstimate>,
    /// `start` frames: `"hit"` or `"miss"` — whether the model was
    /// already resident.
    pub cache: Option<String>,
    /// `scores` frames: the Eq. 10 metric scores.
    pub scores: Option<Vec<MetricScore>>,
    /// `error` frames: one of the [`kind`] constants.
    pub kind: Option<String>,
    /// `error` frames: the human-readable diagnosis.
    pub message: Option<String>,
}

impl Frame {
    fn base(op: &str) -> Frame {
        Frame {
            op: op.to_string(),
            run_id: None,
            seed: None,
            stats: None,
            data: None,
            n_edges: None,
            cost: None,
            cache: None,
            scores: None,
            kind: None,
            message: None,
        }
    }

    /// A `simulate` request (`stats = true` asks for the summary form).
    pub fn simulate(run_id: &str, seed: u64, stats: bool) -> Frame {
        let mut f = Frame::base("simulate");
        f.run_id = Some(run_id.to_string());
        f.seed = Some(seed);
        f.stats = Some(stats);
        f
    }

    /// An `eval` request: simulate under `seed`, score against the
    /// observed graph.
    pub fn eval(run_id: &str, seed: u64) -> Frame {
        let mut f = Frame::base("eval");
        f.run_id = Some(run_id.to_string());
        f.seed = Some(seed);
        f
    }

    /// A liveness probe.
    pub fn ping() -> Frame {
        Frame::base("ping")
    }

    /// The `ping` answer.
    pub fn pong() -> Frame {
        Frame::base("pong")
    }

    /// Ask the server to drain and exit.
    pub fn shutdown() -> Frame {
        Frame::base("shutdown")
    }

    /// The `shutdown` acknowledgement.
    pub fn bye() -> Frame {
        Frame::base("bye")
    }

    /// Ask for the introspection report (resident models, in-flight
    /// cost, per-run counters).
    pub fn status() -> Frame {
        Frame::base("status")
    }

    /// The `status` answer: `data` holds the JSON-encoded
    /// [`StatusReport`](crate::telemetry::StatusReport).
    pub fn status_report(json: String) -> Frame {
        let mut f = Frame::base("status_report");
        f.data = Some(json);
        f
    }

    /// Ask for the metrics registry in Prometheus text exposition form.
    pub fn metrics() -> Frame {
        Frame::base("metrics")
    }

    /// The `metrics` answer: `data` holds the Prometheus text.
    pub fn metrics_report(text: String) -> Frame {
        let mut f = Frame::base("metrics_report");
        f.data = Some(text);
        f
    }

    /// Request admitted: its price and whether the model was resident.
    pub fn start(cost: CostEstimate, cache: &str) -> Frame {
        let mut f = Frame::base("start");
        f.cost = Some(cost);
        f.cache = Some(cache.to_string());
        f
    }

    /// One batch of edge-list text.
    pub fn edges(data: String) -> Frame {
        let mut f = Frame::base("edges");
        f.data = Some(data);
        f
    }

    /// The statistics summary of a `simulate{stats}` request.
    pub fn stats_summary(json: String, n_edges: u64) -> Frame {
        let mut f = Frame::base("stats");
        f.data = Some(json);
        f.n_edges = Some(n_edges);
        f
    }

    /// End of a simulate stream.
    pub fn done(n_edges: u64) -> Frame {
        let mut f = Frame::base("done");
        f.n_edges = Some(n_edges);
        f
    }

    /// The metric scores of an `eval` request.
    pub fn scores(scores: Vec<MetricScore>) -> Frame {
        let mut f = Frame::base("scores");
        f.scores = Some(scores);
        f
    }

    /// A typed failure (see [`kind`]).
    pub fn error(kind: &str, message: impl Into<String>) -> Frame {
        let mut f = Frame::base("error");
        f.kind = Some(kind.to_string());
        f.message = Some(message.into());
        f
    }
}

/// Serialise and write one frame (length prefix + JSON), flushing so the
/// peer sees it immediately.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let json = serde_json::to_string(frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = json.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                bytes.len()
            ),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean close (EOF exactly at a frame
/// boundary); EOF inside a frame, an oversized length prefix, or
/// undecodable JSON are errors.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let text = std::str::from_utf8(&buf).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not UTF-8: {e}"),
        )
    })?;
    let frame = serde_json::from_str(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("undecodable frame: {e}"),
        )
    })?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, frame).unwrap();
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).unwrap().expect("one frame");
        assert!(
            read_frame(&mut cursor).unwrap().is_none(),
            "clean EOF after"
        );
        back
    }

    #[test]
    fn frames_round_trip_through_the_wire_format() {
        let f = round_trip(&Frame::simulate("run", 42, false));
        assert_eq!(f.op, "simulate");
        assert_eq!(f.run_id.as_deref(), Some("run"));
        assert_eq!(f.seed, Some(42));
        assert_eq!(f.stats, Some(false));

        let est = tgae::CostEstimate {
            units: 3,
            centers: 24,
            edges: 72,
            cost: 72 + 8 * 24 + 64 * 3,
        };
        let f = round_trip(&Frame::start(est, "miss"));
        assert_eq!(f.cost, Some(est));
        assert_eq!(f.cache.as_deref(), Some("miss"));

        let f = round_trip(&Frame::error(kind::BUSY, "in-flight budget exhausted"));
        assert_eq!(f.kind.as_deref(), Some(kind::BUSY));
        assert!(f.message.unwrap().contains("budget"));
    }

    #[test]
    fn edge_data_survives_verbatim() {
        let text = "0 1 0\n1 2 0\n2 0 1\n".to_string();
        let f = round_trip(&Frame::edges(text.clone()));
        assert_eq!(f.data, Some(text));
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::ping()).unwrap();
        let truncated = &buf[..buf.len() - 2];
        let err = read_frame(&mut &truncated[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // torn mid-prefix too
        let err = read_frame(&mut &buf[..2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bytes = (u32::MAX).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"xx");
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_json_is_invalid_data() {
        let payload = b"not json";
        let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(payload);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
