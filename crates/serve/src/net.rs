//! Transport abstraction: one server speaks TCP or a Unix socket.
//!
//! Internal module — the public surface only ever sees `Conn` as an
//! opaque `Read + Write` stream handed to the per-connection worker.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// One accepted client connection.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The bound accept socket. Non-blocking so the accept loop can poll the
/// drain flag between connections.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix {
        listener: UnixListener,
        /// Removed on drop so a restarted server can re-bind the path.
        path: PathBuf,
    },
}

impl Listener {
    pub(crate) fn bind_tcp(addr: &str) -> io::Result<Listener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Listener::Tcp(listener))
    }

    #[cfg(unix)]
    pub(crate) fn bind_unix(path: &std::path::Path) -> io::Result<Listener> {
        // A stale socket file from a crashed predecessor blocks the bind.
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Listener::Unix {
            listener,
            path: path.to_path_buf(),
        })
    }

    /// The TCP address actually bound (None for Unix sockets). Lets
    /// callers bind port 0 and discover the ephemeral port.
    pub(crate) fn tcp_addr(&self) -> Option<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix { .. } => None,
        }
    }

    /// Human-readable endpoint description for the startup banner.
    pub(crate) fn endpoint(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<tcp>".to_string()),
            #[cfg(unix)]
            Listener::Unix { path, .. } => path.display().to_string(),
        }
    }

    /// Accept one pending connection; `Ok(None)` when none is waiting.
    /// The accepted stream is switched back to blocking mode (accepted
    /// sockets may inherit the listener's non-blocking flag on some
    /// platforms).
    pub(crate) fn accept_nonblocking(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    // Frames are small request/response writes; Nagle +
                    // delayed ACK would add tens of ms per exchange.
                    stream.set_nodelay(true)?;
                    Ok(Some(Conn::Tcp(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix { listener, .. } => match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Conn::Unix(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix { path, .. } = self {
            let _ = std::fs::remove_file(path);
        }
    }
}
