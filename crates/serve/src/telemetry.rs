//! The `status` report types and the registry-backed per-run counters.
//!
//! The server records request activity into the global
//! [`tg_obs::Registry`] (`serve.requests` / `serve.bytes` counters
//! labelled by run, `serve.cache.*` and `serve.admission.rejected`
//! totals, `serve.request.seconds` latency histograms split by cache
//! hit/miss). A `status` request assembles this module's
//! [`StatusReport`] from live server state plus that registry, so the
//! frame and the `metrics` exposition can never disagree about what
//! was counted.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tg_obs::{MetricValue, Registry};

/// One resident model cache entry as reported by `status`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResidentModel {
    /// The run directory name.
    pub run_id: String,
    /// Whether an in-flight request currently holds the model (a
    /// pinned entry cannot be evicted).
    pub pinned: bool,
}

/// Model-cache lifetime totals as reported by `status`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Requests that found their model resident.
    pub hits: u64,
    /// Requests that paid a load.
    pub misses: u64,
    /// Idle entries evicted to make room.
    pub evictions: u64,
    /// Misses refused because every resident entry was pinned.
    pub saturations: u64,
}

/// Per-run request totals as reported by `status`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunCounters {
    /// The run directory name.
    pub run_id: String,
    /// Requests answered successfully for this run.
    pub requests: u64,
    /// Edge-stream payload bytes sent for this run.
    pub bytes: u64,
}

/// The full `status` frame payload (JSON in `Frame::data`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatusReport {
    /// Whether the server is refusing new work.
    pub draining: bool,
    /// Requests answered successfully over the server's lifetime.
    pub requests_served: u64,
    /// Requests executing right now.
    pub active_requests: u64,
    /// Cost currently admitted.
    pub inflight_cost: u64,
    /// Requests currently admitted.
    pub inflight_requests: u64,
    /// The configured admission budget.
    pub max_cost: u64,
    /// Requests refused by admission control.
    pub admission_rejected: u64,
    /// The configured model-cache capacity.
    pub cache_capacity: u64,
    /// Model-cache lifetime totals.
    pub cache: CacheCounters,
    /// Resident models, most-recently-used first.
    pub resident: Vec<ResidentModel>,
    /// Per-run request totals, sorted by run id.
    pub runs: Vec<RunCounters>,
}

/// Collect the per-run `serve.requests` / `serve.bytes` counters out
/// of the global registry, keyed by the `run` label.
pub(crate) fn runs_from_registry() -> Vec<RunCounters> {
    let mut by_run: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for m in Registry::global().snapshot() {
        let MetricValue::Counter(v) = m.value else {
            continue;
        };
        let Some((_, run)) = m.labels.iter().find(|(k, _)| k == "run") else {
            continue;
        };
        match m.name.as_str() {
            "serve.requests" => by_run.entry(run.clone()).or_default().0 += v,
            "serve.bytes" => by_run.entry(run.clone()).or_default().1 += v,
            _ => {}
        }
    }
    by_run
        .into_iter()
        .map(|(run_id, (requests, bytes))| RunCounters {
            run_id,
            requests,
            bytes,
        })
        .collect()
}
