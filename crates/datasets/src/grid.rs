//! Scalability-test datasets for Figure 6.
//!
//! The paper labels its scalability inputs `nodes * timestamps * density`
//! (e.g. `1k*10*0.01`): a temporal graph with `n` nodes, `T` timestamps,
//! and `n·(n-1)·density` temporal edges. Three sweeps vary one axis at a
//! time from the base point `1k*10*0.01`.

use crate::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_graph::TemporalGraph;

/// One scalability operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridPoint {
    pub nodes: usize,
    pub timestamps: usize,
    pub density: f64,
}

impl GridPoint {
    /// Total temporal-edge budget implied by the density.
    pub fn edge_budget(&self) -> usize {
        (self.nodes as f64 * (self.nodes as f64 - 1.0) * self.density).round() as usize
    }

    /// The paper's axis label, e.g. `1k*10*0.01`.
    pub fn label(&self) -> String {
        let n = if self.nodes.is_multiple_of(1000) {
            format!("{}k", self.nodes / 1000)
        } else {
            format!("{}", self.nodes)
        };
        format!("{}*{}*{}", n, self.timestamps, self.density)
    }

    /// Generate this point deterministically.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        let cfg = SyntheticConfig {
            nodes: self.nodes,
            edges: self.edge_budget(),
            timestamps: self.timestamps,
            communities: 8,
            community_affinity: 0.6,
            pa_smoothing: 1.0,
            recency_repeat: 0.15,
            recency_window: 256,
            growth: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }
}

/// Node sweep: `{1k..5k} * 10 * 0.01` (Fig. 6 col. 1).
pub fn node_sweep() -> Vec<GridPoint> {
    (1..=5)
        .map(|k| GridPoint {
            nodes: k * 1000,
            timestamps: 10,
            density: 0.01,
        })
        .collect()
}

/// Timestamp sweep: `1k * {10..50} * 0.01` (Fig. 6 col. 2).
pub fn timestamp_sweep() -> Vec<GridPoint> {
    (1..=5)
        .map(|k| GridPoint {
            nodes: 1000,
            timestamps: k * 10,
            density: 0.01,
        })
        .collect()
}

/// Density sweep: `1k * 10 * {0.01..0.05}` (Fig. 6 col. 3).
pub fn density_sweep() -> Vec<GridPoint> {
    (1..=5)
        .map(|k| GridPoint {
            nodes: 1000,
            timestamps: 10,
            density: 0.01 * k as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_paper_shape() {
        let ns = node_sweep();
        assert_eq!(ns.len(), 5);
        assert_eq!(ns[0].label(), "1k*10*0.01");
        assert_eq!(ns[4].label(), "5k*10*0.01");
        assert_eq!(timestamp_sweep()[2].label(), "1k*30*0.01");
        assert_eq!(density_sweep()[1].label(), "1k*10*0.02");
    }

    #[test]
    fn edge_budget_matches_density() {
        let p = GridPoint {
            nodes: 1000,
            timestamps: 10,
            density: 0.01,
        };
        assert_eq!(p.edge_budget(), 9990);
    }

    #[test]
    fn generation_hits_budget_roughly() {
        let p = GridPoint {
            nodes: 500,
            timestamps: 10,
            density: 0.01,
        };
        let g = p.generate(3);
        assert_eq!(g.n_nodes(), 500);
        assert_eq!(g.n_timestamps(), 10);
        let budget = p.edge_budget();
        assert!(
            g.n_edges() >= budget * 95 / 100,
            "{} vs {}",
            g.n_edges(),
            budget
        );
    }
}
