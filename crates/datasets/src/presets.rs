//! Named dataset presets mirroring Table II of the paper.
//!
//! Each preset carries the paper's node/edge/timestamp counts plus
//! structural knobs chosen to mimic the network's character (citation vs
//! communication vs trust vs Q&A). `Preset::generate_scaled` shrinks node
//! and edge counts proportionally for laptop-scale runs — the experiment
//! binaries default to a scale < 1 and accept `--scale 1.0` for the full
//! Table II operating points.

use crate::synthetic::{generate, SyntheticConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tg_graph::TemporalGraph;

/// A named dataset preset (paper Table II row).
#[derive(Clone, Debug)]
pub struct Preset {
    pub name: &'static str,
    pub config: SyntheticConfig,
}

impl Preset {
    /// Generate at full Table II scale with the given seed.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        generate(&self.config, &mut rng)
    }

    /// Generate with node/edge counts multiplied by `scale`.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> TemporalGraph {
        let cfg = self.config.scaled(scale);
        let mut rng = SmallRng::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }

    /// Paper statistics `(nodes, edges, timestamps)` for this preset.
    pub fn paper_stats(&self) -> (usize, usize, usize) {
        (self.config.nodes, self.config.edges, self.config.timestamps)
    }
}

/// DBLP: IEEE VIS citation network, 1990–2015. Strong communities
/// (research topics), densifying over time, few repeats.
pub fn dblp() -> Preset {
    Preset {
        name: "DBLP",
        config: SyntheticConfig {
            nodes: 1909,
            edges: 8237,
            timestamps: 15,
            communities: 12,
            community_affinity: 0.85,
            pa_smoothing: 1.0,
            recency_repeat: 0.05,
            recency_window: 64,
            growth: 0.8,
        },
    }
}

/// EMAIL: dense communication network — heavy edge re-firing between the
/// same pairs across 805 timestamps.
pub fn email() -> Preset {
    Preset {
        name: "EMAIL",
        config: SyntheticConfig {
            nodes: 986,
            edges: 332_334,
            timestamps: 805,
            communities: 6,
            community_affinity: 0.75,
            pa_smoothing: 0.5,
            recency_repeat: 0.55,
            recency_window: 2048,
            growth: 0.1,
        },
    }
}

/// MSG: online-community messaging (Panzarasa et al.) — moderate repeats,
/// bursty.
pub fn msg() -> Preset {
    Preset {
        name: "MSG",
        config: SyntheticConfig {
            nodes: 1899,
            edges: 20_296,
            timestamps: 195,
            communities: 8,
            community_affinity: 0.6,
            pa_smoothing: 0.7,
            recency_repeat: 0.35,
            recency_window: 512,
            growth: 0.2,
        },
    }
}

/// BITCOIN-A: Bitcoin Alpha who-trusts-whom — sparse, long time axis,
/// mild preferential attachment.
pub fn bitcoin_alpha() -> Preset {
    Preset {
        name: "BITCOIN-A",
        config: SyntheticConfig {
            nodes: 3783,
            edges: 24_186,
            timestamps: 1902,
            communities: 10,
            community_affinity: 0.5,
            pa_smoothing: 0.8,
            recency_repeat: 0.1,
            recency_window: 256,
            growth: 0.3,
        },
    }
}

/// BITCOIN-O: Bitcoin OTC who-trusts-whom.
pub fn bitcoin_otc() -> Preset {
    Preset {
        name: "BITCOIN-O",
        config: SyntheticConfig {
            nodes: 5881,
            edges: 35_592,
            timestamps: 1904,
            communities: 10,
            community_affinity: 0.5,
            pa_smoothing: 0.8,
            recency_repeat: 0.1,
            recency_window: 256,
            growth: 0.3,
        },
    }
}

/// MATH: Math Overflow interactions — large, strong hubs (power users).
pub fn math() -> Preset {
    Preset {
        name: "MATH",
        config: SyntheticConfig {
            nodes: 24_818,
            edges: 506_550,
            timestamps: 79,
            communities: 20,
            community_affinity: 0.55,
            pa_smoothing: 0.4,
            recency_repeat: 0.25,
            recency_window: 1024,
            growth: 0.5,
        },
    }
}

/// UBUNTU: Ask Ubuntu interactions — the paper's scalability stressor
/// (~14M temporal nodes); most baselines OOM here.
pub fn ubuntu() -> Preset {
    Preset {
        name: "UBUNTU",
        config: SyntheticConfig {
            nodes: 159_316,
            edges: 964_437,
            timestamps: 88,
            communities: 40,
            community_affinity: 0.5,
            pa_smoothing: 0.35,
            recency_repeat: 0.2,
            recency_window: 2048,
            growth: 0.4,
        },
    }
}

/// All seven Table II presets in paper order.
pub fn all_presets() -> Vec<Preset> {
    vec![
        dblp(),
        email(),
        msg(),
        bitcoin_alpha(),
        bitcoin_otc(),
        math(),
        ubuntu(),
    ]
}

/// Look up a preset by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Preset> {
    all_presets()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_statistics_match_paper() {
        let expect = [
            ("DBLP", 1909, 8237, 15),
            ("EMAIL", 986, 332_334, 805),
            ("MSG", 1899, 20_296, 195),
            ("BITCOIN-A", 3783, 24_186, 1902),
            ("BITCOIN-O", 5881, 35_592, 1904),
            ("MATH", 24_818, 506_550, 79),
            ("UBUNTU", 159_316, 964_437, 88),
        ];
        let presets = all_presets();
        assert_eq!(presets.len(), expect.len());
        for (p, (name, n, m, t)) in presets.iter().zip(expect) {
            assert_eq!(p.name, name);
            assert_eq!(p.paper_stats(), (n, m, t), "{name}");
        }
    }

    #[test]
    fn scaled_generation_runs_and_matches_shape() {
        let g = dblp().generate_scaled(0.2, 7);
        assert_eq!(g.n_timestamps(), 15);
        assert!(g.n_nodes() >= 300 && g.n_nodes() <= 400);
        assert!(g.n_edges() > 1000);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("dblp").is_some());
        assert!(by_name("Bitcoin-A").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn full_dblp_generation_is_fast_and_exactish() {
        let g = dblp().generate(42);
        assert_eq!(g.n_nodes(), 1909);
        assert_eq!(g.n_timestamps(), 15);
        let m = g.n_edges();
        assert!(m > 8000 && m <= 8237, "{m}");
    }
}
