//! Seeded synthetic temporal-graph generator.
//!
//! The paper evaluates on seven real networks (Table II) that cannot be
//! redistributed here. This module provides the substitute mandated by
//! DESIGN.md §3: a configurable generator that produces temporal graphs
//! with the same observable character the evaluated methods are sensitive
//! to — heavy-tailed degrees (preferential attachment), community mixing,
//! temporal burstiness (edge re-firing within a recency window, which is
//! what creates δ-temporal motifs), and densification over time.
//!
//! Everything is driven by an explicit RNG, so a `(config, seed)` pair is a
//! reproducible dataset.

use rand::Rng;
use tg_graph::{TemporalEdge, TemporalGraph};

/// Configuration for [`generate`].
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Total temporal edges `m` across all timestamps.
    pub edges: usize,
    /// Number of timestamps `T`.
    pub timestamps: usize,
    /// Number of planted communities (>= 1).
    pub communities: usize,
    /// Probability an edge stays within its source's community.
    pub community_affinity: f64,
    /// Strength of preferential attachment: weight of a node is
    /// `degree + pa_smoothing`. Smaller smoothing => heavier tail.
    pub pa_smoothing: f64,
    /// Probability a new edge "re-fires" a recent edge (same pair, new
    /// timestamp) — produces bursts and temporal motifs.
    pub recency_repeat: f64,
    /// Size of the recent-edge pool used by `recency_repeat`.
    pub recency_window: usize,
    /// Exponent controlling per-timestamp edge volume: `m_t ∝ (t+1)^growth`.
    /// 0.0 gives a uniform profile; > 0 densifies over time.
    pub growth: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            nodes: 1000,
            edges: 5000,
            timestamps: 10,
            communities: 8,
            community_affinity: 0.8,
            pa_smoothing: 1.0,
            recency_repeat: 0.15,
            recency_window: 256,
            growth: 0.3,
        }
    }
}

impl SyntheticConfig {
    /// Scale node/edge counts by `f` (timestamps unchanged), clamping to
    /// sane minima. Used to run paper-scale presets at laptop scale.
    pub fn scaled(&self, f: f64) -> SyntheticConfig {
        let mut c = self.clone();
        c.nodes = ((self.nodes as f64 * f) as usize).max(16);
        c.edges = ((self.edges as f64 * f) as usize).max(32);
        c
    }
}

/// Deterministically generate a temporal graph from a config and RNG.
pub fn generate<R: Rng + ?Sized>(cfg: &SyntheticConfig, rng: &mut R) -> TemporalGraph {
    assert!(cfg.nodes >= 2, "need at least 2 nodes");
    assert!(cfg.timestamps >= 1);
    assert!(cfg.communities >= 1);
    let n = cfg.nodes;

    // Community assignment: round-robin gives near-equal sizes; node order
    // is already random under any downstream relabeling.
    let community: Vec<u32> = (0..n).map(|i| (i % cfg.communities) as u32).collect();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.communities];
    for (i, &c) in community.iter().enumerate() {
        members[c as usize].push(i as u32);
    }

    // Per-timestamp edge budget: m_t ∝ (t+1)^growth, exactly m in total.
    let weights: Vec<f64> = (0..cfg.timestamps)
        .map(|t| ((t + 1) as f64).powf(cfg.growth))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut budget: Vec<usize> = weights
        .iter()
        .map(|w| (w / wsum * cfg.edges as f64).floor() as usize)
        .collect();
    let mut assigned: usize = budget.iter().sum();
    let mut t_fix = 0usize;
    while assigned < cfg.edges {
        budget[t_fix % cfg.timestamps] += 1;
        assigned += 1;
        t_fix += 1;
    }

    let mut degree = vec![0f64; n];
    let mut recent: Vec<(u32, u32)> = Vec::with_capacity(cfg.recency_window);
    let mut edges = Vec::with_capacity(cfg.edges);

    // Weighted pick over all nodes by (degree + smoothing); O(n) per draw is
    // too slow for large m, so sample by rejection against the max weight.
    let mut max_w = cfg.pa_smoothing;
    let pick_global = |rng: &mut R, degree: &[f64], max_w: f64| -> u32 {
        loop {
            let i = rng.gen_range(0..n);
            let w = degree[i] + cfg.pa_smoothing;
            if rng.gen::<f64>() * max_w <= w {
                return i as u32;
            }
        }
    };

    for (t, &m_t) in budget.iter().enumerate() {
        for _ in 0..m_t {
            let (u, v) = if !recent.is_empty() && rng.gen::<f64>() < cfg.recency_repeat {
                // Re-fire a recent pair, occasionally reversed (reply edge):
                let &(a, b) = &recent[rng.gen_range(0..recent.len())];
                if rng.gen::<f64>() < 0.3 {
                    (b, a)
                } else {
                    (a, b)
                }
            } else {
                let u = pick_global(rng, &degree, max_w);
                // Retry target picks that self-loop so the per-timestamp edge
                // budget is met exactly; fall back to a uniform non-u node.
                let mut v = u;
                for attempt in 0..64 {
                    let cand = if attempt == 63 {
                        let mut c = rng.gen_range(0..n) as u32;
                        while c == u {
                            c = rng.gen_range(0..n) as u32;
                        }
                        c
                    } else if rng.gen::<f64>() < cfg.community_affinity {
                        // within-community preferential pick by rejection
                        let pool = &members[community[u as usize] as usize];
                        if pool.len() <= 1 {
                            pick_global(rng, &degree, max_w)
                        } else {
                            loop {
                                let cand = pool[rng.gen_range(0..pool.len())];
                                let w = degree[cand as usize] + cfg.pa_smoothing;
                                if rng.gen::<f64>() * max_w <= w {
                                    break cand;
                                }
                            }
                        }
                    } else {
                        pick_global(rng, &degree, max_w)
                    };
                    if cand != u {
                        v = cand;
                        break;
                    }
                }
                (u, v)
            };
            if u == v {
                continue; // unreachable in practice; kept as a guard
            }
            degree[u as usize] += 1.0;
            degree[v as usize] += 1.0;
            max_w = max_w.max(degree[u as usize] + cfg.pa_smoothing);
            max_w = max_w.max(degree[v as usize] + cfg.pa_smoothing);
            if recent.len() == cfg.recency_window && !recent.is_empty() {
                let slot = rng.gen_range(0..recent.len());
                recent[slot] = (u, v);
            } else {
                recent.push((u, v));
            }
            edges.push(TemporalEdge::new(u, v, t as u32));
        }
    }

    TemporalGraph::from_edges(n, cfg.timestamps, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn respects_sizes() {
        let cfg = SyntheticConfig {
            nodes: 200,
            edges: 1000,
            timestamps: 7,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generate(&cfg, &mut rng);
        assert_eq!(g.n_nodes(), 200);
        assert_eq!(g.n_timestamps(), 7);
        // self-loop drops leave us close to the budget
        assert_eq!(g.n_edges(), 1000);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = SyntheticConfig::default();
        let g1 = generate(&cfg, &mut SmallRng::seed_from_u64(9));
        let g2 = generate(&cfg, &mut SmallRng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
        let g3 = generate(&cfg, &mut SmallRng::seed_from_u64(10));
        assert_ne!(g1.edges(), g3.edges());
    }

    #[test]
    fn growth_profile_densifies() {
        let cfg = SyntheticConfig {
            nodes: 300,
            edges: 3000,
            timestamps: 10,
            growth: 1.0,
            ..Default::default()
        };
        let g = generate(&cfg, &mut SmallRng::seed_from_u64(2));
        let counts = g.edge_counts_per_timestamp();
        assert!(
            counts[9] > counts[0] * 3,
            "late {} early {}",
            counts[9],
            counts[0]
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let cfg = SyntheticConfig {
            nodes: 2000,
            edges: 10_000,
            timestamps: 5,
            pa_smoothing: 0.5,
            ..Default::default()
        };
        let g = generate(&cfg, &mut SmallRng::seed_from_u64(3));
        let mut deg = g.static_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = deg[..20].iter().sum();
        let total: usize = deg.iter().sum();
        // top 1% of nodes should hold far more than 1% of degree mass
        assert!(
            top1pct as f64 > 0.05 * total as f64,
            "top1% {} total {}",
            top1pct,
            total
        );
    }

    #[test]
    fn recency_creates_repeat_pairs() {
        let cfg = SyntheticConfig {
            nodes: 500,
            edges: 5000,
            timestamps: 10,
            recency_repeat: 0.5,
            ..Default::default()
        };
        let g = generate(&cfg, &mut SmallRng::seed_from_u64(4));
        let mut pairs: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
        let m = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert!(
            pairs.len() < m * 9 / 10,
            "expected >=10% repeats: {} of {}",
            pairs.len(),
            m
        );
    }

    #[test]
    fn scaled_clamps() {
        let cfg = SyntheticConfig::default().scaled(0.001);
        assert!(cfg.nodes >= 16 && cfg.edges >= 32);
    }

    #[test]
    fn no_self_loops() {
        let g = generate(&SyntheticConfig::default(), &mut SmallRng::seed_from_u64(5));
        assert!(g.edges().iter().all(|e| e.u != e.v));
    }
}
