//! `tg-datasets`: dataset substrate for the TGAE reproduction.
//!
//! The paper evaluates on seven real temporal networks (Table II) plus a
//! synthetic scalability grid (Figure 6). Real dumps are not vendorable, so
//! this crate generates seeded synthetic stand-ins with matching scale and
//! structural character (see DESIGN.md §3 for the substitution rationale);
//! real data in `src dst timestamp` format drops in via `tg_graph::io`.
//!
//! - [`synthetic`] — the configurable generator (preferential attachment +
//!   communities + temporal burstiness + densification).
//! - [`presets`] — the seven Table II rows as named presets.
//! - [`grid`] — the `n*T*density` scalability sweeps of Figure 6.

pub mod grid;
pub mod presets;
pub mod synthetic;

pub use grid::{density_sweep, node_sweep, timestamp_sweep, GridPoint};
pub use presets::{all_presets, by_name, Preset};
pub use synthetic::{generate, SyntheticConfig};
