//! End-to-end integration: dataset generation -> TGAE training ->
//! simulation -> evaluation, across crates, driven through the `Session`
//! API.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::prelude::*;

fn small_observed(seed: u64) -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes: 120,
        edges: 900,
        timestamps: 8,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    tgx::datasets::generate(&cfg, &mut rng)
}

fn quick_cfg(epochs: usize) -> TgaeConfig {
    let mut cfg = TgaeConfig::tiny();
    cfg.epochs = epochs;
    cfg
}

#[test]
fn full_pipeline_produces_scored_simulation() {
    let observed = small_observed(1);
    let mut session = Session::builder(&observed)
        .config(quick_cfg(20))
        .seed(2)
        .build()
        .expect("valid session");
    let report = session.train().expect("train");
    assert!(report.final_loss().is_finite());
    let synthetic = session.simulate().expect("simulate");
    assert_eq!(synthetic.n_nodes(), observed.n_nodes());
    assert_eq!(synthetic.n_timestamps(), observed.n_timestamps());
    assert_eq!(
        synthetic.edge_counts_per_timestamp(),
        observed.edge_counts_per_timestamp(),
        "per-timestamp budgets must be preserved"
    );
    let scores = session.evaluate(&synthetic).expect("evaluate");
    assert_eq!(scores.len(), 7);
    for s in &scores {
        assert!(s.avg.is_finite() && s.med.is_finite(), "{}", s.kind.name());
        assert!(s.avg >= 0.0 && s.med >= 0.0);
    }
}

#[test]
fn generation_is_deterministic_for_fixed_seeds() {
    let observed = small_observed(3);
    let mut session = Session::builder(&observed)
        .config(quick_cfg(10))
        .build()
        .expect("session");
    session.train().expect("train");
    let gen = |master: u64| {
        session
            .simulate_seeded(
                master,
                GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
            )
            .expect("simulate")
    };
    let a = gen(42);
    let b = gen(42);
    assert_eq!(a.edges(), b.edges(), "same master must reproduce the graph");
    let c = gen(43);
    assert_ne!(a.edges(), c.edges(), "different masters should differ");
}

#[test]
fn training_is_deterministic_for_fixed_master_seed() {
    let observed = small_observed(4);
    let run = || {
        let mut session = Session::builder(&observed)
            .config(quick_cfg(8))
            .seed(4)
            .build()
            .expect("session");
        session.train().expect("train").losses
    };
    assert_eq!(run(), run(), "training must be reproducible from the seed");
}

#[test]
fn all_variants_train_and_generate() {
    let observed = small_observed(5);
    for variant in TgaeVariant::ALL {
        let mut cfg = quick_cfg(6).with_variant(variant);
        // keep the unbounded variant cheap
        if variant == TgaeVariant::NoTruncation {
            cfg.batch_centers = 8;
        }
        let mut session = Session::builder(&observed)
            .config(cfg)
            .seed(6)
            .build()
            .expect("session");
        let report = session.train().expect("train");
        assert!(report.final_loss().is_finite(), "{} loss", variant.name());
        let synthetic = session.simulate().expect("simulate");
        assert_eq!(
            synthetic.n_edges(),
            observed.n_edges(),
            "{} budget",
            variant.name()
        );
    }
}

#[test]
fn sparse_candidate_mode_trains_and_generates() {
    let observed = small_observed(7);
    let mut cfg = quick_cfg(10);
    cfg.dense_cutoff = 0; // force sampled-softmax path even on a small graph
    cfg.n_negatives = 32;
    let mut session = Session::builder(&observed)
        .config(cfg)
        .seed(8)
        .build()
        .expect("session");
    let report = session.train().expect("train");
    assert!(report.final_loss().is_finite());
    let synthetic = session.simulate().expect("simulate");
    assert_eq!(synthetic.n_nodes(), observed.n_nodes());
    assert!(synthetic.n_edges() > 0);
}

#[test]
fn model_serializes_and_roundtrips() {
    let observed = small_observed(9);
    let mut session = Session::builder(&observed)
        .config(quick_cfg(5))
        .build()
        .expect("session");
    session.train().expect("train");
    let json = serde_json::to_string(session.model()).expect("serialize model");
    let restored: Tgae = serde_json::from_str(&json).expect("deserialize model");
    // a session adopting the restored model generates identically
    let restored_session = Session::builder(&observed)
        .with_model(restored)
        .build()
        .expect("adopted session");
    let a = session
        .simulate_seeded(
            10,
            GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
        )
        .expect("simulate");
    let b = restored_session
        .simulate_seeded(
            10,
            GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
        )
        .expect("simulate");
    assert_eq!(a.edges(), b.edges());
}

#[test]
fn trained_beats_untrained_on_reconstruction() {
    // integration-level quality check: training must make generated edges
    // overlap the observed pair set more than an untrained model does.
    let observed = small_observed(11);
    let truth: std::collections::HashSet<(u32, u32)> =
        observed.edges().iter().map(|e| (e.u, e.v)).collect();
    let hit_rate = |session: &Session<'_>| {
        let g = session
            .simulate_seeded(
                12,
                GraphSink::new(observed.n_nodes(), observed.n_timestamps()),
            )
            .expect("simulate");
        g.edges()
            .iter()
            .filter(|e| truth.contains(&(e.u, e.v)))
            .count() as f64
            / g.n_edges().max(1) as f64
    };
    let untrained = Session::builder(&observed)
        .config(quick_cfg(40))
        .build()
        .expect("session");
    let untrained_rate = hit_rate(&untrained);
    let mut trained = Session::builder(&observed)
        .config(quick_cfg(40))
        .build()
        .expect("session");
    trained.train().expect("train");
    let trained_rate = hit_rate(&trained);
    assert!(
        trained_rate > untrained_rate,
        "trained {trained_rate:.3} <= untrained {untrained_rate:.3}"
    );
}
