//! Cross-crate protocol test: every baseline honours the comparison
//! protocol (same nodes, timestamps, per-timestamp budgets) on a realistic
//! synthetic dataset, and quality orderings hold where the paper predicts
//! them strongly.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::baselines::{all_baselines, ErGenerator, TemporalGraphGenerator};
use tgx::metrics::{census_per_chunk, evaluate, mmd2_tv, MetricKind};
use tgx::prelude::*;

fn observed() -> TemporalGraph {
    let cfg = SyntheticConfig {
        nodes: 100,
        edges: 800,
        timestamps: 6,
        recency_repeat: 0.3,
        ..Default::default()
    };
    let mut rng = SmallRng::seed_from_u64(21);
    tgx::datasets::generate(&cfg, &mut rng)
}

#[test]
fn every_baseline_preserves_shape_and_total_budget() {
    let g = observed();
    for mut b in all_baselines() {
        let mut rng = SmallRng::seed_from_u64(7);
        let out = b.fit_generate(&g, &mut rng);
        assert_eq!(out.n_nodes(), g.n_nodes(), "{} nodes", b.name());
        assert_eq!(out.n_timestamps(), g.n_timestamps(), "{} T", b.name());
        assert_eq!(out.n_edges(), g.n_edges(), "{} total budget", b.name());
        assert!(
            out.edges().iter().all(|e| e.u != e.v),
            "{} generated self-loops",
            b.name()
        );
    }
}

#[test]
fn every_baseline_scores_finitely_under_the_harness() {
    let g = observed();
    for mut b in all_baselines() {
        let mut rng = SmallRng::seed_from_u64(8);
        let out = b.fit_generate(&g, &mut rng);
        for s in evaluate(&g, &out) {
            assert!(
                s.avg.is_finite() && s.med.is_finite(),
                "{} {}",
                b.name(),
                s.kind.name()
            );
        }
    }
}

#[test]
fn walk_based_methods_beat_er_on_motif_mmd() {
    // the paper's core motif claim, at integration scale: methods that
    // model temporal structure (TagGen/TIGGER-style) preserve the motif
    // distribution better than uniform rewiring.
    let g = observed();
    let delta = 2;
    let real: Vec<Vec<f64>> = census_per_chunk(&g, delta, 3)
        .iter()
        .map(|c| c.distribution())
        .collect();
    let mmd_of = |gen: &TemporalGraph| {
        let d: Vec<Vec<f64>> = census_per_chunk(gen, delta, 3)
            .iter()
            .map(|c| c.distribution())
            .collect();
        mmd2_tv(&real, &d, 1.0)
    };
    let mut er_rng = SmallRng::seed_from_u64(9);
    let er = ErGenerator.fit_generate(&g, &mut er_rng);
    let er_mmd = mmd_of(&er);

    let mut best_walk = f64::INFINITY;
    for mut b in all_baselines() {
        if !matches!(b.name(), "TagGen" | "TIGGER" | "TGGAN") {
            continue;
        }
        let mut rng = SmallRng::seed_from_u64(9);
        let out = b.fit_generate(&g, &mut rng);
        best_walk = best_walk.min(mmd_of(&out));
    }
    assert!(
        best_walk < er_mmd,
        "best walk-based MMD {best_walk} not better than E-R {er_mmd}"
    );
}

#[test]
fn ba_preserves_degree_tail_better_than_er() {
    let g = observed();
    let ple_err = |name: &str| {
        let mut gens = all_baselines();
        let b = gens
            .iter_mut()
            .find(|b| b.name() == name)
            .expect("method exists");
        let mut rng = SmallRng::seed_from_u64(10);
        let out = b.fit_generate(&g, &mut rng);
        evaluate(&g, &out)
            .into_iter()
            .find(|s| s.kind == MetricKind::Ple)
            .expect("ple scored")
            .avg
    };
    // preferential attachment tracks a heavy-tailed input's PLE better
    // than uniform rewiring in expectation; allow generous slack but keep
    // the ordering
    let ba = ple_err("B-A");
    let er = ple_err("E-R");
    assert!(ba < er * 1.5, "B-A PLE err {ba} vs E-R {er}");
}
