//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *any* temporal graph, not just the unit-test fixtures.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::graph::{Snapshot, TemporalEdge, TemporalGraph};
use tgx::metrics::{count_motifs, GraphStats, MetricKind};
use tgx::sampling::{sample_ego_graph, ComputationGraph, SamplerConfig};

/// Strategy: a random temporal graph with up to 12 nodes, 4 timestamps,
/// and 40 edges.
fn arb_graph() -> impl Strategy<Value = TemporalGraph> {
    (
        2usize..12,
        1usize..4,
        proptest::collection::vec((0u32..12, 0u32..12, 0u32..4), 1..40),
    )
        .prop_map(|(n, t, raw)| {
            let n = n.max(2);
            let t = t.max(1);
            let edges: Vec<TemporalEdge> = raw
                .into_iter()
                .map(|(u, v, tt)| TemporalEdge::new(u % n as u32, v % n as u32, tt % t as u32))
                .collect();
            TemporalGraph::from_edges(n, t, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Accumulated snapshots are monotone: edge sets only grow with t.
    #[test]
    fn accumulated_snapshots_grow(g in arb_graph()) {
        let mut prev = 0usize;
        for t in 0..g.n_timestamps() as u32 {
            let snap = Snapshot::accumulated(&g, t, true);
            prop_assert!(snap.n_edges() >= prev);
            prev = snap.n_edges();
        }
    }

    /// Degree sums: undirected adjacency degree total equals 2x the number
    /// of undirected simple edges.
    #[test]
    fn undirected_degree_sum_is_even(g in arb_graph()) {
        let snap = Snapshot::accumulated(&g, g.n_timestamps() as u32 - 1, true);
        let adj = snap.undirected_adjacency();
        let total: usize = adj.iter().map(|a| a.len()).sum();
        prop_assert_eq!(total % 2, 0);
    }

    /// Wedge count >= 3 * triangle count (every triangle contains 3 wedges).
    #[test]
    fn wedges_bound_triangles(g in arb_graph()) {
        let snap = Snapshot::accumulated(&g, g.n_timestamps() as u32 - 1, true);
        let s = GraphStats::compute(&snap);
        prop_assert!(s.wedge_count + 1e-9 >= 3.0 * s.triangle_count,
            "wedges {} triangles {}", s.wedge_count, s.triangle_count);
    }

    /// LCC size + (components - 1) <= n: the largest component and the
    /// remaining components partition the nodes.
    #[test]
    fn lcc_and_components_partition(g in arb_graph()) {
        let snap = Snapshot::accumulated(&g, g.n_timestamps() as u32 - 1, true);
        let s = GraphStats::compute(&snap);
        prop_assert!(s.lcc + s.n_components - 1.0 <= g.n_nodes() as f64 + 1e-9);
        prop_assert!(s.lcc >= 1.0 || g.n_nodes() == 0);
    }

    /// Metric dispatch is consistent with the bulk computation.
    #[test]
    fn metric_kind_matches_bulk(g in arb_graph()) {
        let snap = Snapshot::accumulated(&g, 0, true);
        let bulk = GraphStats::compute(&snap);
        for kind in MetricKind::ALL {
            prop_assert_eq!(kind.compute(&snap), bulk.get(kind));
        }
    }

    /// Motif census is monotone in delta: a larger window never counts fewer.
    #[test]
    fn motif_census_monotone_in_delta(g in arb_graph()) {
        let small = count_motifs(&g, 1).total();
        let large = count_motifs(&g, 3).total();
        prop_assert!(large >= small);
    }

    /// Ego-graph sampling respects its contracts on any graph.
    #[test]
    fn ego_graph_contracts(g in arb_graph(), seed in 0u64..1000) {
        let cfg = SamplerConfig { k: 2, threshold: 4, time_window: 1, degree_weighted: true };
        let mut rng = SmallRng::seed_from_u64(seed);
        let center = (0u32, 0u32);
        let ego = sample_ego_graph(&g, center, &cfg, &mut rng);
        prop_assert_eq!(ego.center(), center);
        prop_assert!(ego.radius() <= cfg.k);
        // all nodes unique
        let mut nodes = ego.nodes.clone();
        nodes.sort_unstable();
        nodes.dedup();
        prop_assert_eq!(nodes.len(), ego.nodes.len());
        // tree edges reference valid slots
        for &(p, c) in &ego.tree_edges {
            prop_assert!((p as usize) < ego.len() && (c as usize) < ego.len());
        }
    }

    /// Computation-graph invariants on any graph: self-loops present,
    /// slot indices in range, level-0 equals the centers.
    #[test]
    fn computation_graph_contracts(g in arb_graph(), seed in 0u64..1000) {
        let cfg = SamplerConfig { k: 2, threshold: 4, time_window: 1, degree_weighted: true };
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers = vec![(0u32, 0u32), (1u32 % g.n_nodes() as u32, 0u32)];
        let cg = ComputationGraph::build(&g, &centers, &cfg, &mut rng);
        prop_assert_eq!(cg.k(), 2);
        for (i, layer) in cg.layers.iter().enumerate() {
            prop_assert_eq!(layer.n_targets, cg.levels[i].len());
            prop_assert_eq!(layer.n_sources, cg.levels[i + 1].len());
            for j in 0..layer.n_targets {
                let si = layer.self_idx[j] as usize;
                prop_assert_eq!(cg.levels[i][j], cg.levels[i + 1][si]);
            }
            for (&s, &d) in layer.src.iter().zip(&layer.dst) {
                prop_assert!((s as usize) < layer.n_sources);
                prop_assert!((d as usize) < layer.n_targets);
            }
        }
    }

    /// Edge-list IO round-trips arbitrary graphs.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        tgx::graph::io::write_edge_list(&g, &mut buf).expect("write");
        let g2 = tgx::graph::io::read_edge_list(buf.as_slice(), None).expect("read");
        // node ids are re-interned and timestamps compacted, so compare
        // edge count and per-timestamp histogram shape
        prop_assert_eq!(g2.n_edges(), g.n_edges());
        let nonempty: Vec<usize> = g
            .edge_counts_per_timestamp()
            .into_iter()
            .filter(|&c| c > 0)
            .collect();
        prop_assert_eq!(g2.edge_counts_per_timestamp(), nonempty);
    }
}
