//! Failure-injection and pathological-input tests: the library must stay
//! finite, error *typedly* (no panics on user input), and stay
//! protocol-compliant on degenerate graphs and hostile hyper-parameters.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tgx::prelude::*;

fn cfg(epochs: usize) -> TgaeConfig {
    let mut c = TgaeConfig::tiny();
    c.epochs = epochs;
    c
}

fn trained_session(g: &TemporalGraph, c: TgaeConfig, seed: u64) -> Session<'_> {
    let mut s = Session::builder(g)
        .config(c)
        .seed(seed)
        .build()
        .expect("valid session");
    s.train().expect("train");
    s
}

/// One repeated pair, one timestamp: the smallest possible corpus.
#[test]
fn trains_on_single_pair_graph() {
    let edges = vec![
        TemporalEdge::new(0, 1, 0),
        TemporalEdge::new(0, 1, 0),
        TemporalEdge::new(0, 1, 0),
    ];
    let g = TemporalGraph::from_edges(2, 1, edges);
    let mut session = trained_session(&g, cfg(10), 1);
    let out = session.simulate().expect("simulate");
    assert_eq!(out.n_edges(), 3);
    // only possible non-self target is node 1
    assert!(out.edges().iter().all(|e| e.u == 0 && e.v == 1));
}

/// A graph with long stretches of empty timestamps.
#[test]
fn handles_sparse_time_axis() {
    let edges = vec![TemporalEdge::new(0, 1, 0), TemporalEdge::new(1, 2, 9)];
    let g = TemporalGraph::from_edges(3, 10, edges);
    let mut session = trained_session(&g, cfg(6), 2);
    let out = session.simulate().expect("simulate");
    assert_eq!(
        out.edge_counts_per_timestamp(),
        g.edge_counts_per_timestamp()
    );
}

/// Hostile learning rate: clipping must keep parameters finite.
#[test]
fn survives_huge_learning_rate() {
    let edges: Vec<TemporalEdge> = (0..30)
        .map(|i| TemporalEdge::new(i % 6, (i + 1) % 6, i % 3))
        .collect();
    let g = TemporalGraph::from_edges(6, 3, edges);
    let mut c = cfg(15);
    c.lr = 1.0; // absurd
    c.grad_clip = 1.0;
    let mut session = Session::builder(&g).config(c).build().expect("session");
    let report = session.train().expect("train");
    assert!(report.losses.iter().all(|l| l.is_finite()), "loss diverged");
    assert!(
        !session.model().store.any_non_finite(),
        "parameters went NaN/Inf"
    );
}

/// Budget larger than the candidate pool: generation must clamp, not hang.
#[test]
fn generation_clamps_when_budget_exceeds_targets() {
    // node 0 fires 10 edges at t=0 but only 2 possible distinct targets
    let mut edges = Vec::new();
    for _ in 0..5 {
        edges.push(TemporalEdge::new(0, 1, 0));
        edges.push(TemporalEdge::new(0, 2, 0));
    }
    let g = TemporalGraph::from_edges(3, 1, edges);
    let mut session = trained_session(&g, cfg(5), 3);
    let out = session.simulate().expect("simulate");
    assert_eq!(out.n_edges(), 10, "multiplicity fill must hit the budget");
    assert!(out
        .edges()
        .iter()
        .all(|e| e.u == 0 && (e.v == 1 || e.v == 2)));
}

/// Bad inputs to the session surface as typed errors, not panics.
#[test]
fn session_surfaces_typed_errors() {
    let g = TemporalGraph::from_edges(5, 2, Vec::new());
    match Session::builder(&g).config(cfg(3)).build() {
        Err(TgxError::EmptyGraph) => {}
        other => panic!("expected EmptyGraph, got {other:?}"),
    }
    let ok = TemporalGraph::from_edges(5, 2, vec![TemporalEdge::new(0, 1, 0)]);
    let mut bad = cfg(3);
    bad.epochs = 0;
    match Session::builder(&ok).config(bad).build() {
        Err(TgxError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig, got {other:?}"),
    };
}

/// Metrics on a graph with zero edges must not divide by zero.
#[test]
fn metrics_on_empty_snapshot() {
    let g = TemporalGraph::from_edges(5, 2, vec![TemporalEdge::new(0, 1, 1)]);
    // t=0 accumulated snapshot has no edges at all
    let s = Snapshot::accumulated(&g, 0, true);
    let stats = GraphStats::compute(&s);
    assert_eq!(stats.mean_degree, 0.0);
    assert_eq!(stats.triangle_count, 0.0);
    assert_eq!(stats.n_components, 5.0);
    assert!(stats.ple.is_finite() || stats.ple == 1.0);
}

/// Evaluating two identical degenerate graphs scores zero, not NaN.
#[test]
fn evaluation_of_degenerate_graphs_is_zero() {
    let g = TemporalGraph::from_edges(4, 3, vec![TemporalEdge::new(0, 1, 2)]);
    for s in evaluate(&g, &g) {
        assert_eq!(s.avg, 0.0, "{}", s.kind.name());
    }
}

/// The motif census of a motif-free graph is empty, and MMD against it is
/// still well-defined.
#[test]
fn motif_free_graphs_are_handled() {
    use tgx::metrics::{count_motifs, mmd2_single};
    let g = TemporalGraph::from_edges(4, 2, vec![TemporalEdge::new(0, 1, 0)]);
    let census = count_motifs(&g, 10);
    assert_eq!(census.total(), 0);
    let d = census.distribution();
    let m = mmd2_single(&d, &d, 1.0);
    assert!(m.abs() < 1e-12);
}

/// Baselines must not hang on a graph whose proposals can starve (an
/// isolated pair with budgets at every timestamp).
#[test]
fn baselines_terminate_on_starved_proposals() {
    use tgx::baselines::{TagGenConfig, TagGenGenerator, TemporalGraphGenerator};
    let mut edges = Vec::new();
    for t in 0..5u32 {
        edges.push(TemporalEdge::new(0, 1, t));
    }
    let g = TemporalGraph::from_edges(10, 5, edges);
    let mut rng = SmallRng::seed_from_u64(4);
    let out = TagGenGenerator::new(TagGenConfig {
        walks_per_round: 16,
        ..Default::default()
    })
    .fit_generate(&g, &mut rng);
    assert_eq!(out.n_edges(), g.n_edges());
}

/// Transform utilities compose without losing edges.
#[test]
fn transforms_compose() {
    use tgx::graph::transform::{compact_nodes, induced_subgraph, reverse, time_slice};
    let mut edges = Vec::new();
    for t in 0..6u32 {
        for u in 0..8u32 {
            edges.push(TemporalEdge::new(u, (u + 1) % 8, t));
        }
    }
    let g = TemporalGraph::from_edges(10, 6, edges);
    let sliced = time_slice(&g, 2, 5);
    assert_eq!(sliced.n_edges(), 24);
    let sub = induced_subgraph(&sliced, &[0, 1, 2, 3]);
    assert!(sub.n_edges() > 0);
    let (compacted, keep) = compact_nodes(&reverse(&sub));
    assert_eq!(compacted.n_nodes(), keep.len());
    assert_eq!(compacted.n_edges(), sub.n_edges());
}
