//! `tgx` — facade for the TGAE temporal-graph-simulation workspace, a
//! from-scratch Rust reproduction of *"Efficient Learning-based Graph
//! Simulation for Temporal Graphs"* (Xiang, Xu, Cheng, Wang, Zhang —
//! ICDE 2025).
//!
//! This crate re-exports the whole stack so downstream users need a single
//! dependency:
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`graph`] | `tg-graph` | temporal graph storage, snapshots, I/O |
//! | [`tensor`] | `tg-tensor` | CPU autodiff tensor library |
//! | [`sampling`] | `tg-sampling` | ego-graph sampling, bipartite batching |
//! | [`model`] | `tgae` | the TGAE model, trainer, generator |
//! | [`metrics`] | `tg-metrics` | Table III stats, motif census, MMD |
//! | [`baselines`] | `tg-baselines` | the ten comparison generators |
//! | [`datasets`] | `tg-datasets` | synthetic Table II presets, grids |
//!
//! # Quickstart
//!
//! ```
//! use tgx::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // 1. an observed temporal graph (here: a synthetic preset, scaled down)
//! let observed = tgx::datasets::presets::dblp().generate_scaled(0.05, 7);
//!
//! // 2. train TGAE on it
//! let mut cfg = TgaeConfig::tiny();
//! cfg.epochs = 5; // keep the doctest fast; use the default for real runs
//! let mut model = Tgae::new(observed.n_nodes(), observed.n_timestamps(), cfg);
//! let report = fit(&mut model, &observed);
//! assert!(report.final_loss().is_finite());
//!
//! // 3. simulate a synthetic graph with the same shape
//! let mut rng = SmallRng::seed_from_u64(0);
//! let synthetic = generate(&model, &observed, &mut rng);
//! assert_eq!(synthetic.n_edges(), observed.n_edges());
//!
//! // 4. score the simulation (Eq. 10)
//! let scores = evaluate(&observed, &synthetic);
//! assert_eq!(scores.len(), 7);
//! ```

pub use tg_baselines as baselines;
pub use tg_datasets as datasets;
pub use tg_graph as graph;
pub use tg_metrics as metrics;
pub use tg_sampling as sampling;
pub use tg_tensor as tensor;
pub use tgae as model;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use tg_baselines::TemporalGraphGenerator;
    pub use tg_datasets::{Preset, SyntheticConfig};
    pub use tg_graph::{
        EdgeSink, GenerationStats, GraphSink, Snapshot, StatsSink, TemporalEdge, TemporalGraph,
    };
    pub use tg_metrics::{evaluate, GraphStats, MetricKind};
    pub use tg_sampling::SamplerConfig;
    pub use tgae::{
        fit, generate, generate_shard, generate_with_sink, ShardSpec, SimulationEngine,
        SimulationPlan, Tgae, TgaeConfig, TgaeVariant, TrainReport,
    };
}
