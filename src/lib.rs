//! `tgx` — facade for the TGAE temporal-graph-simulation workspace, a
//! from-scratch Rust reproduction of *"Efficient Learning-based Graph
//! Simulation for Temporal Graphs"* (Xiang, Xu, Cheng, Wang, Zhang —
//! ICDE 2025).
//!
//! This crate re-exports the whole stack so downstream users need a single
//! dependency:
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`graph`] | `tg-graph` | temporal graph storage, snapshots, I/O, sinks/sources |
//! | [`store`] | `tg-store` | out-of-core columnar edge store (TGES) + streaming ingest |
//! | [`tensor`] | `tg-tensor` | CPU autodiff tensor library |
//! | [`sampling`] | `tg-sampling` | ego-graph sampling, bipartite batching |
//! | [`model`] | `tgae` | the TGAE model, `Session` API, engine |
//! | [`metrics`] | `tg-metrics` | Table III stats, motif census, MMD |
//! | [`baselines`] | `tg-baselines` | the ten comparison generators |
//! | [`datasets`] | `tg-datasets` | synthetic Table II presets, grids |
//!
//! The entry point is the [`Session`](tgae::Session) API — one object for
//! the train → simulate → evaluate lifecycle, driven by a single master
//! seed, with typed errors, epoch observation, and checkpoint/resume. The
//! `tgx-cli` binary (workspace crate `crates/cli`) drives the same
//! pipeline across *processes*: per-shard workers, checkpointed model
//! loading, and a bit-identical merge.
//!
//! # Quickstart
//!
//! ```
//! use tgx::prelude::*;
//!
//! // 1. an observed temporal graph (here: a synthetic preset, scaled down)
//! let observed = tgx::datasets::presets::dblp().generate_scaled(0.05, 7);
//!
//! // 2. build a session: config + one master seed for the whole lifecycle
//! let mut cfg = TgaeConfig::tiny();
//! cfg.epochs = 5; // keep the doctest fast; use the default for real runs
//! let mut session = Session::builder(&observed)
//!     .config(cfg)
//!     .seed(7)
//!     .build()
//!     .expect("valid graph + config");
//!
//! // 3. train (typed errors; attach .observer(..) for progress/early stop)
//! let report = session.train().expect("training ran");
//! assert!(report.final_loss().is_finite());
//!
//! // 4. simulate a synthetic graph with the same shape
//! let synthetic = session.simulate().expect("simulation ran");
//! assert_eq!(synthetic.n_edges(), observed.n_edges());
//!
//! // 5. score the simulation (Eq. 10)
//! let scores = session.evaluate(&synthetic).expect("same shape");
//! assert_eq!(scores.len(), 7);
//! ```

pub use tg_baselines as baselines;
pub use tg_datasets as datasets;
pub use tg_graph as graph;
pub use tg_metrics as metrics;
pub use tg_sampling as sampling;
pub use tg_store as store;
pub use tg_tensor as tensor;
pub use tgae as model;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use tg_baselines::TemporalGraphGenerator;
    pub use tg_datasets::{Preset, SyntheticConfig};
    pub use tg_graph::{
        EdgeSink, EdgeSource, GenerationStats, GraphSink, InMemorySource, Snapshot, StatsSink,
        TemporalEdge, TemporalGraph,
    };
    pub use tg_metrics::{evaluate, GraphStats, MetricKind};
    pub use tg_sampling::SamplerConfig;
    pub use tg_store::{StoreReader, StoreSource, StoreWriter};
    #[allow(deprecated)]
    pub use tgae::{fit, generate};
    pub use tgae::{
        generate_shard, generate_with_sink, CheckpointPolicy, EpochEvent, RunObserver, SeedPolicy,
        Session, SessionBuilder, ShardSpec, SimulationEngine, SimulationPlan, Tgae, TgaeConfig,
        TgaeVariant, TgxError, TrainControl, TrainReport,
    };
}
